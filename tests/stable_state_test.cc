#include "core/stable_state.h"

#include <gtest/gtest.h>

#include <limits>

namespace fglb {
namespace {

MetricVector Vec(double latency, double throughput) {
  MetricVector v{};
  At(v, Metric::kLatency) = latency;
  At(v, Metric::kThroughput) = throughput;
  return v;
}

TEST(StableStateStoreTest, FindUnknownIsNull) {
  StableStateStore store;
  EXPECT_EQ(store.Find(MakeClassKey(1, 1)), nullptr);
  EXPECT_EQ(store.size(), 0u);
}

TEST(StableStateStoreTest, UpdateAndFind) {
  StableStateStore store;
  const ClassKey key = MakeClassKey(1, 2);
  store.Update(key, Vec(0.5, 10), 100.0);
  const StableStateSignature* sig = store.Find(key);
  ASSERT_NE(sig, nullptr);
  EXPECT_DOUBLE_EQ(At(sig->averages, Metric::kLatency), 0.5);
  EXPECT_DOUBLE_EQ(sig->recorded_at, 100.0);
  EXPECT_EQ(sig->intervals_observed, 1u);
}

TEST(StableStateStoreTest, UpdateReplacesLastStableValue) {
  StableStateStore store;
  const ClassKey key = MakeClassKey(1, 2);
  store.Update(key, Vec(0.5, 10), 100.0);
  store.Update(key, Vec(0.7, 12), 110.0);
  const StableStateSignature* sig = store.Find(key);
  ASSERT_NE(sig, nullptr);
  EXPECT_DOUBLE_EQ(At(sig->averages, Metric::kLatency), 0.7);
  EXPECT_DOUBLE_EQ(sig->recorded_at, 110.0);
  EXPECT_EQ(sig->intervals_observed, 2u);
}

TEST(StableStateStoreTest, NonFiniteUpdateKeepsLastGoodSignature) {
  StableStateStore store;
  const ClassKey key = MakeClassKey(1, 2);
  store.Update(key, Vec(0.5, 10), 100.0);
  // A degraded stats feed can deliver NaN/inf averages (e.g. rates over
  // a dropped interval); the poisoned update must be rejected whole.
  store.Update(key, Vec(std::numeric_limits<double>::quiet_NaN(), 10),
               110.0);
  store.Update(key, Vec(0.4, std::numeric_limits<double>::infinity()),
               120.0);
  const StableStateSignature* sig = store.Find(key);
  ASSERT_NE(sig, nullptr);
  EXPECT_DOUBLE_EQ(At(sig->averages, Metric::kLatency), 0.5);
  EXPECT_DOUBLE_EQ(sig->recorded_at, 100.0);
  EXPECT_EQ(sig->intervals_observed, 1u);
}

TEST(StableStateStoreTest, NonFiniteFirstUpdateCreatesNoSignature) {
  StableStateStore store;
  store.Update(MakeClassKey(1, 1),
               Vec(std::numeric_limits<double>::quiet_NaN(), 1), 0.0);
  EXPECT_EQ(store.Find(MakeClassKey(1, 1)), nullptr);
  EXPECT_EQ(store.size(), 0u);
}

TEST(StableStateStoreTest, IndependentPerClass) {
  StableStateStore store;
  store.Update(MakeClassKey(1, 1), Vec(0.1, 1), 0.0);
  store.Update(MakeClassKey(1, 2), Vec(0.2, 2), 0.0);
  store.Update(MakeClassKey(2, 1), Vec(0.3, 3), 0.0);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_DOUBLE_EQ(
      At(store.Find(MakeClassKey(2, 1))->averages, Metric::kLatency), 0.3);
  EXPECT_EQ(store.Keys().size(), 3u);
}

TEST(StableStateStoreTest, EraseRemoves) {
  StableStateStore store;
  store.Update(MakeClassKey(1, 1), Vec(0.1, 1), 0.0);
  store.Erase(MakeClassKey(1, 1));
  EXPECT_EQ(store.Find(MakeClassKey(1, 1)), nullptr);
}

}  // namespace
}  // namespace fglb
