#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/queue_resource.h"

namespace fglb {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(3.0, [&] { order.push_back(3); });
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(2.0, [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 3.0);
}

TEST(SimulatorTest, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.ScheduleAt(5.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 2.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 10.0);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 10) sim.ScheduleAfter(1.0, step);
  };
  sim.ScheduleAfter(0.0, step);
  sim.RunToCompletion();
  EXPECT_EQ(chain, 10);
  EXPECT_EQ(sim.Now(), 9.0);
}

TEST(QueueResourceTest, SingleServerSerializes) {
  Simulator sim;
  QueueResource q(&sim, 1, "disk");
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    q.Submit(2.0, [&](double) { completions.push_back(sim.Now()); });
  }
  sim.RunToCompletion();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 2.0);
  EXPECT_DOUBLE_EQ(completions[1], 4.0);
  EXPECT_DOUBLE_EQ(completions[2], 6.0);
}

TEST(QueueResourceTest, MultiServerRunsInParallel) {
  Simulator sim;
  QueueResource q(&sim, 2, "cpu");
  std::vector<double> completions;
  for (int i = 0; i < 4; ++i) {
    q.Submit(1.0, [&](double) { completions.push_back(sim.Now()); });
  }
  sim.RunToCompletion();
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 1.0);
  EXPECT_DOUBLE_EQ(completions[2], 2.0);
  EXPECT_DOUBLE_EQ(completions[3], 2.0);
}

TEST(QueueResourceTest, SojournIncludesQueueing) {
  Simulator sim;
  QueueResource q(&sim, 1, "disk");
  std::vector<double> sojourns;
  q.Submit(1.0, [&](double s) { sojourns.push_back(s); });
  q.Submit(1.0, [&](double s) { sojourns.push_back(s); });
  sim.RunToCompletion();
  ASSERT_EQ(sojourns.size(), 2u);
  EXPECT_DOUBLE_EQ(sojourns[0], 1.0);
  EXPECT_DOUBLE_EQ(sojourns[1], 2.0);  // waited 1s, served 1s
}

TEST(QueueResourceTest, UtilizationTracksBusyFraction) {
  Simulator sim;
  QueueResource q(&sim, 1, "disk");
  q.Submit(3.0, nullptr);
  sim.RunUntil(10.0);
  EXPECT_NEAR(q.UtilizationSinceReset(), 0.3, 1e-9);
  q.ResetAccounting();
  sim.RunUntil(20.0);
  EXPECT_NEAR(q.UtilizationSinceReset(), 0.0, 1e-9);
}

TEST(QueueResourceTest, UtilizationWithMultipleServers) {
  Simulator sim;
  QueueResource q(&sim, 4, "cpu");
  // Two servers busy for 5s out of a 10s window: utilization 0.25.
  q.Submit(5.0, nullptr);
  q.Submit(5.0, nullptr);
  sim.RunUntil(10.0);
  EXPECT_NEAR(q.UtilizationSinceReset(), 0.25, 1e-9);
}

TEST(QueueResourceTest, UtilizationMidJob) {
  Simulator sim;
  QueueResource q(&sim, 1, "disk");
  q.Submit(100.0, nullptr);
  sim.RunUntil(10.0);
  // Job still in service: the whole window so far was busy.
  EXPECT_NEAR(q.UtilizationSinceReset(), 1.0, 1e-9);
}

TEST(QueueResourceTest, CompletedJobsCount) {
  Simulator sim;
  QueueResource q(&sim, 2, "cpu");
  for (int i = 0; i < 7; ++i) q.Submit(0.5, nullptr);
  sim.RunToCompletion();
  EXPECT_EQ(q.completed_jobs(), 7u);
  EXPECT_EQ(q.busy_servers(), 0);
  EXPECT_EQ(q.queue_length(), 0u);
}

TEST(QueueResourceTest, ZeroServiceTimeCompletesImmediately) {
  Simulator sim;
  QueueResource q(&sim, 1, "disk");
  bool done = false;
  q.Submit(0.0, [&](double s) {
    done = true;
    EXPECT_DOUBLE_EQ(s, 0.0);
  });
  sim.RunToCompletion();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace fglb
