// Byte-identical replay at scale: a live overload run at 10x the
// default client population, driven by the batched-cohort client
// emulator, captured and replayed through ReplayRunner. The replayed
// run's action and admission trace projections must match the live
// run byte for byte — the cohort fast path and the calendar-queue
// kernel change how events are produced, not what the cluster does,
// and the capture/replay contract has to survive both.

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/trace_check.h"
#include "replay/capture.h"
#include "replay/replayer.h"
#include "scenarios/harness.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

constexpr double kDurationSeconds = 240;
// fglb_sim's overload scenario at --clients-scale=10: 7.5 x 120
// default TPC-W clients, times ten. Over the 10k auto-cohort
// threshold is not required — the test forces cohorts on.
constexpr double kClients = 9000;
constexpr uint64_t kSeed = 11;

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// The run-to-run comparable projection of one phase's events: the raw
// trace lines minus the wall-clock header field (mono_us differs
// across runs by construction; everything else must not).
std::vector<std::string> PhaseLines(const std::vector<std::string>& lines,
                                    const std::string& phase) {
  std::vector<std::string> out;
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    JsonValue event;
    std::string error;
    EXPECT_TRUE(JsonValue::Parse(line, &event, &error)) << error;
    if (event.StringOr("phase", "") != phase) continue;
    event.object.erase("mono_us");
    out.push_back(event.Dump());
  }
  return out;
}

struct RunTraces {
  std::vector<std::string> action;
  std::vector<std::string> admission;
};

RunTraces TracesOf(const std::vector<std::string>& lines) {
  RunTraces traces;
  std::string error;
  EXPECT_TRUE(CheckTraceLines(lines, &error)) << error;
  EXPECT_TRUE(ActionLines(lines, &traces.action, &error)) << error;
  traces.admission = PhaseLines(lines, "admission");
  return traces;
}

TEST(ScaleReplayTest, CohortOverloadAt10xReplaysByteIdentically) {
  const std::string path = TempPath("fglb_scale_replay_overload.fglbcap");

  // --- live: overload topology at 10x, cohorts on, capture attached.
  RunTraces live;
  uint64_t live_completed = 0;
  {
    ClusterHarness harness;
    harness.trace().EnableBuffering();
    // Mirrors fglb_sim --scenario=overload --clients-scale=10: the
    // default 4-server pool, one TPC-W replica, admission on.
    harness.AddServers(4);
    Scheduler* tpcw = harness.AddApplication(MakeTpcw());
    tpcw->AddReplica(harness.resources().CreateReplica(
        harness.resources().servers()[0].get(), 8192));
    AdmissionConfig admission_config;
    harness.EnableAdmission(admission_config);
    ClientEmulator::Options emu;
    emu.cohort = true;
    harness.AddConstantClients(tpcw, kClients, kSeed, emu);

    CaptureWriter writer(&harness.sim());
    CaptureInfo info;
    info.seed = kSeed;
    info.scenario = "overload";
    info.duration_seconds = kDurationSeconds;
    info.interval_seconds = harness.retuner().config().interval_seconds;
    info.mrc_sample_rate = harness.retuner().config().mrc.sample_rate;
    info.max_migrations_per_interval =
        harness.retuner().config().max_migrations_per_interval;
    info.admission_spec = admission_config.ToString();
    std::string error;
    ASSERT_TRUE(writer.Open(path, info, SnapshotTopology(harness), &error))
        << error;
    harness.AttachRecorders(&writer, &writer);
    harness.Start();
    harness.RunFor(kDurationSeconds);
    ASSERT_TRUE(writer.Finalize(harness.retuner().actions(),
                                harness.retuner().samples()));
    live_completed = tpcw->total_completed();
    live = TracesOf(harness.trace().BufferedLines());
  }
  // The run must actually overload the replica and trip admission, or
  // byte-equality of empty projections would prove nothing.
  ASSERT_GT(live_completed, 0u);
  ASSERT_FALSE(live.admission.empty());

  // --- replay: strict mode, zero generated fallbacks allowed.
  Capture capture;
  std::string error;
  ASSERT_TRUE(ReadCapture(path, &capture, &error)) << error;
  ReplayRunner runner(&capture, ReplayBuildOptions{});
  ASSERT_TRUE(runner.Build(&error)) << error;
  runner.harness()->trace().EnableBuffering();
  ASSERT_TRUE(runner.Run(&error)) << error;
  EXPECT_EQ(runner.source()->misses(), 0u);
  EXPECT_EQ(runner.source()->remaining(), 0u);
  const RunTraces replayed =
      TracesOf(runner.harness()->trace().BufferedLines());

  EXPECT_EQ(replayed.action, live.action);
  EXPECT_EQ(replayed.admission, live.admission);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace fglb
