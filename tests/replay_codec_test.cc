// Property/fuzz coverage of the byte-level codec under the capture and
// v2 trace formats: random streams must round-trip exactly, and random
// byte corruption must be detected by the checksums — never a crash,
// never silently wrong data.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/varint.h"
#include "replay/capture.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace fglb {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- varint / zigzag properties ---

TEST(ReplayCodecTest, VarintRoundTripsEdgeAndRandomValues) {
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  UINT64_MAX, UINT64_MAX - 1,
                                  1ULL << 32, (1ULL << 63) - 1, 1ULL << 63};
  std::mt19937_64 rng(42);
  for (int i = 0; i < 2000; ++i) {
    // Mix full-range and small values (small ones exercise 1-2 byte
    // encodings, where off-by-ones would hide).
    values.push_back(rng() >> (rng() % 64));
  }
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    ASSERT_LE(buf.size(), 10u);
    uint64_t decoded = 0;
    const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
    ASSERT_EQ(GetVarint64(p, p + buf.size(), &decoded), buf.size()) << v;
    EXPECT_EQ(decoded, v);
  }
}

TEST(ReplayCodecTest, VarintRejectsTruncation) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 500; ++i) {
    const uint64_t v = rng() >> (rng() % 64);
    std::string buf;
    PutVarint64(&buf, v);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
    for (size_t keep = 0; keep < buf.size(); ++keep) {
      uint64_t decoded = 0;
      EXPECT_EQ(GetVarint64(p, p + keep, &decoded), 0u)
          << v << " truncated to " << keep;
    }
  }
}

TEST(ReplayCodecTest, VarintRejectsOverlongEncoding) {
  // 11 continuation bytes never terminate a valid varint.
  const std::string overlong(11, '\x80');
  const uint8_t* p = reinterpret_cast<const uint8_t*>(overlong.data());
  uint64_t decoded = 0;
  EXPECT_EQ(GetVarint64(p, p + overlong.size(), &decoded), 0u);
}

TEST(ReplayCodecTest, ZigZagRoundTripsFullDomain) {
  std::mt19937_64 rng(11);
  std::vector<int64_t> values = {0, 1, -1, INT64_MAX, INT64_MIN,
                                 INT64_MIN + 1};
  for (int i = 0; i < 2000; ++i) {
    values.push_back(static_cast<int64_t>(rng()));
  }
  for (int64_t v : values) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  // The uint64 wrap-around deltas the page/time encoders rely on.
  const uint64_t a = 5, b = UINT64_MAX - 2;
  const uint64_t delta = ZigZagEncode(static_cast<int64_t>(b - a));
  EXPECT_EQ(a + static_cast<uint64_t>(ZigZagDecode(delta)), b);
}

TEST(ReplayCodecTest, Crc32MatchesKnownVectorAndChains) {
  // "123456789" -> 0xCBF43926 is the standard CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  const std::string data = "the quick brown fox";
  for (size_t split = 0; split <= data.size(); ++split) {
    EXPECT_EQ(Crc32(data.data() + split, data.size() - split,
                    Crc32(data.data(), split)),
              Crc32(data.data(), data.size()));
  }
}

// --- v2 trace: random streams round-trip, corruption detected ---

std::vector<TraceRecord> RandomRecords(uint64_t seed, size_t count) {
  std::mt19937_64 rng(seed);
  std::vector<TraceRecord> records;
  records.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    TraceRecord r;
    // Adversarial key/page distributions: wild jumps and tight runs.
    r.class_key = rng() % 4 == 0 ? rng() : MakeClassKey(1, rng() % 8);
    r.access.page = rng() % 4 == 0
                        ? rng()
                        : MakePageId(static_cast<TableId>(rng() % 4),
                                     rng() % 10000);
    r.access.kind = rng() % 2 == 0 ? AccessKind::kSequential
                                   : AccessKind::kRandom;
    r.access.is_write = rng() % 3 == 0;
    records.push_back(r);
  }
  return records;
}

TEST(ReplayCodecTest, RandomTraceStreamsRoundTripExactly) {
  const std::string path = TempPath("fglb_codec_trace_rt.bin");
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const auto records = RandomRecords(seed, 1 + seed * 37);
    ASSERT_TRUE(WriteTrace(path, records));
    std::vector<TraceRecord> loaded;
    ASSERT_TRUE(ReadTrace(path, &loaded)) << "seed " << seed;
    ASSERT_EQ(loaded.size(), records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      ASSERT_EQ(loaded[i].class_key, records[i].class_key);
      ASSERT_EQ(loaded[i].access.page, records[i].access.page);
      ASSERT_EQ(loaded[i].access.kind, records[i].access.kind);
      ASSERT_EQ(loaded[i].access.is_write, records[i].access.is_write);
    }
  }
  std::remove(path.c_str());
}

TEST(ReplayCodecTest, RandomTraceCorruptionAlwaysDetected) {
  const std::string path = TempPath("fglb_codec_trace_fuzz.bin");
  ASSERT_TRUE(WriteTrace(path, RandomRecords(99, 500)));
  const std::string clean = Slurp(path);
  std::mt19937_64 rng(123);
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupted = clean;
    const size_t pos = rng() % corrupted.size();
    const uint8_t xor_mask = static_cast<uint8_t>(1 + rng() % 255);
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ xor_mask);
    WriteBytes(path, corrupted);
    std::vector<TraceRecord> loaded;
    // Must fail cleanly — magic, flags validation or the CRC-32 traps
    // every single-byte change; silent wrong data would pass here.
    EXPECT_FALSE(ReadTrace(path, &loaded))
        << "byte " << pos << " ^ " << int{xor_mask};
    EXPECT_TRUE(loaded.empty());
  }
  std::remove(path.c_str());
}

// --- capture format: round-trip and corruption ---

// A small capture written through the real writer, with events spread
// over simulated time so the time-delta chain is exercised.
std::string WriteSampleCapture(const std::string& path, uint64_t seed) {
  Simulator sim;
  CaptureWriter writer(&sim);

  CaptureInfo info;
  info.seed = seed;
  info.fault_seed = seed + 1;
  info.scenario = "codec-test";
  info.fault_spec = "disk@10:server=0,factor=2,duration=5";
  info.duration_seconds = 30;
  info.interval_seconds = 10;
  info.mrc_sample_rate = 0.5;
  info.max_migrations_per_interval = 2;

  CaptureTopology topo;
  topo.servers.push_back({8, 32768, 0.002, 0.006, 0.001});
  ApplicationSpec app;
  app.id = 1;
  app.name = "app-one";
  QueryTemplate tmpl;
  tmpl.id = 3;
  tmpl.name = "scan";
  AccessComponent component;
  component.table = 2;
  component.table_pages = 1000;
  component.kind = AccessComponent::Kind::kSequentialScan;
  component.mean_pages = 16;
  tmpl.components.push_back(component);
  app.templates.push_back(tmpl);
  app.mix_weights.push_back(1.0);
  topo.apps.push_back(app);
  topo.replicas.push_back({0, 0, 8192, 17});
  topo.placements.push_back({1, {0}});

  std::string error;
  EXPECT_TRUE(writer.Open(path, info, topo, &error)) << error;

  std::mt19937_64 rng(seed);
  QueryTemplate* tmpl_ptr = &topo.apps[0].templates[0];
  for (int i = 0; i < 200; ++i) {
    const double t = static_cast<double>(i) * 0.1 +
                     static_cast<double>(rng() % 1000) * 1e-6;
    sim.ScheduleAt(t, [&writer, &rng, tmpl_ptr] {
      QueryInstance query;
      query.app = 1;
      query.tmpl = tmpl_ptr;
      query.client_id = rng() % 32;
      writer.OnArrival(query);
      std::vector<PageAccess> accesses;
      const size_t n = 1 + rng() % 40;
      for (size_t j = 0; j < n; ++j) {
        PageAccess a;
        a.page = rng() % 4 == 0 ? rng()
                                : MakePageId(2, rng() % 1000);
        a.kind = rng() % 2 == 0 ? AccessKind::kSequential
                                : AccessKind::kRandom;
        a.is_write = rng() % 5 == 0;
        accesses.push_back(a);
      }
      writer.OnExecution(0, MakeClassKey(1, 3), accesses);
    });
  }
  sim.RunToCompletion();

  std::vector<SelectiveRetuner::Action> actions(2);
  actions[0].time = 10;
  actions[0].kind = SelectiveRetuner::ActionKind::kQuotaEnforced;
  actions[0].app = 1;
  actions[0].description = "quota 512 pages";
  actions[1].time = 20;
  actions[1].kind = SelectiveRetuner::ActionKind::kClassRescheduled;
  actions[1].app = 1;
  actions[1].description = "rescheduled";
  std::vector<SelectiveRetuner::IntervalSample> samples(3);
  for (int i = 0; i < 3; ++i) {
    samples[i].time = 10.0 * (i + 1);
    SelectiveRetuner::AppSample as;
    as.app = 1;
    as.queries = 100 + i;
    as.avg_latency = 0.5 * i;
    as.p95_latency = 0.9 * i;
    as.throughput = 10.0 + i;
    as.sla_met = i != 1;
    as.servers_used = 1;
    samples[i].apps.push_back(as);
    samples[i].servers.push_back({0, 0.5, 0.25});
  }
  EXPECT_TRUE(writer.Finalize(actions, samples));
  return Slurp(path);
}

TEST(ReplayCodecTest, CaptureRoundTripsExactly) {
  const std::string path = TempPath("fglb_codec_capture_rt.bin");
  WriteSampleCapture(path, 5);
  Capture capture;
  std::string error;
  ASSERT_TRUE(ReadCapture(path, &capture, &error)) << error;

  EXPECT_EQ(capture.info.seed, 5u);
  EXPECT_EQ(capture.info.scenario, "codec-test");
  EXPECT_EQ(capture.info.fault_spec, "disk@10:server=0,factor=2,duration=5");
  EXPECT_DOUBLE_EQ(capture.info.mrc_sample_rate, 0.5);
  EXPECT_EQ(capture.info.max_migrations_per_interval, 2);
  ASSERT_EQ(capture.topology.servers.size(), 1u);
  EXPECT_EQ(capture.topology.servers[0].cores, 8);
  ASSERT_EQ(capture.topology.apps.size(), 1u);
  EXPECT_EQ(capture.topology.apps[0].name, "app-one");
  ASSERT_EQ(capture.topology.apps[0].templates.size(), 1u);
  EXPECT_EQ(capture.topology.apps[0].templates[0].components[0].kind,
            AccessComponent::Kind::kSequentialScan);
  ASSERT_EQ(capture.topology.replicas.size(), 1u);
  EXPECT_EQ(capture.topology.replicas[0].engine_seed, 17u);
  ASSERT_EQ(capture.topology.placements.size(), 1u);

  EXPECT_EQ(capture.arrivals.size(), 200u);
  EXPECT_EQ(capture.executions.size(), 200u);
  ASSERT_EQ(capture.actions.size(), 2u);
  EXPECT_EQ(capture.actions[1].description, "rescheduled");
  ASSERT_EQ(capture.samples.size(), 3u);
  EXPECT_FALSE(capture.samples[1].apps[0].sla_met);

  // Re-generate the identical stream and compare the decoded events
  // element-wise (times must be bit-exact through the delta chain).
  const std::string path2 = TempPath("fglb_codec_capture_rt2.bin");
  WriteSampleCapture(path2, 5);
  Capture capture2;
  ASSERT_TRUE(ReadCapture(path2, &capture2, &error)) << error;
  ASSERT_EQ(capture2.arrivals.size(), capture.arrivals.size());
  for (size_t i = 0; i < capture.arrivals.size(); ++i) {
    EXPECT_EQ(capture.arrivals[i].t, capture2.arrivals[i].t);
    EXPECT_EQ(capture.arrivals[i].client_id, capture2.arrivals[i].client_id);
  }
  ASSERT_EQ(capture2.accesses.size(), capture.accesses.size());
  for (size_t i = 0; i < capture.accesses.size(); ++i) {
    EXPECT_EQ(capture.accesses[i].page, capture2.accesses[i].page);
    EXPECT_EQ(capture.accesses[i].kind, capture2.accesses[i].kind);
    EXPECT_EQ(capture.accesses[i].is_write, capture2.accesses[i].is_write);
  }
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(ReplayCodecTest, CaptureCorruptionAlwaysDetected) {
  const std::string path = TempPath("fglb_codec_capture_fuzz.bin");
  const std::string clean = WriteSampleCapture(path, 9);
  ASSERT_FALSE(clean.empty());
  std::mt19937_64 rng(321);
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupted = clean;
    const size_t pos = rng() % corrupted.size();
    const uint8_t xor_mask = static_cast<uint8_t>(1 + rng() % 255);
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ xor_mask);
    WriteBytes(path, corrupted);
    Capture capture;
    std::string error;
    EXPECT_FALSE(ReadCapture(path, &capture, &error))
        << "byte " << pos << " ^ " << int{xor_mask};
  }
  std::remove(path.c_str());
}

TEST(ReplayCodecTest, CaptureTruncationAndGarbageDetected) {
  const std::string path = TempPath("fglb_codec_capture_trunc.bin");
  const std::string clean = WriteSampleCapture(path, 13);
  std::mt19937_64 rng(55);
  for (int trial = 0; trial < 50; ++trial) {
    WriteBytes(path, clean.substr(0, rng() % clean.size()));
    Capture capture;
    std::string error;
    EXPECT_FALSE(ReadCapture(path, &capture, &error));
  }
  WriteBytes(path, clean + "tail");
  Capture capture;
  std::string error;
  EXPECT_FALSE(ReadCapture(path, &capture, &error));
  EXPECT_NE(error.find("trailing garbage"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(ReplayCodecTest, ToLegacyTracePreservesOrderAndClasses) {
  const std::string path = TempPath("fglb_codec_capture_legacy.bin");
  WriteSampleCapture(path, 21);
  Capture capture;
  std::string error;
  ASSERT_TRUE(ReadCapture(path, &capture, &error)) << error;
  const std::vector<TraceRecord> records = ToLegacyTrace(capture);
  EXPECT_EQ(records.size(), capture.accesses.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].class_key, MakeClassKey(1, 3));
    EXPECT_EQ(records[i].access.page, capture.accesses[i].page);
  }
  // And the legacy writer round-trips what the converter produced.
  const std::string trace_path = TempPath("fglb_codec_capture_legacy.trc");
  ASSERT_TRUE(WriteTrace(trace_path, records));
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(ReadTrace(trace_path, &loaded));
  EXPECT_EQ(loaded.size(), records.size());
  std::remove(path.c_str());
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace fglb
