#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/ring_window.h"

namespace fglb {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i;
    all.Add(x);
    (i < 37 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Quantile({5.0}, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile({5.0}, 1.0), 5.0);
}

TEST(QuantileTest, InterpolatesLinearly) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
}

TEST(QuartilesTest, KnownValues) {
  // Type-7 quartiles of 1..9: Q1 = 3, median = 5, Q3 = 7.
  std::vector<double> v = {9, 1, 5, 3, 7, 2, 8, 4, 6};
  const QuartileSummary q = Quartiles(v);
  EXPECT_DOUBLE_EQ(q.q1, 3.0);
  EXPECT_DOUBLE_EQ(q.median, 5.0);
  EXPECT_DOUBLE_EQ(q.q3, 7.0);
  EXPECT_DOUBLE_EQ(q.iqr, 4.0);
}

TEST(QuartilesTest, ConstantSampleHasZeroIqr) {
  std::vector<double> v(10, 3.3);
  const QuartileSummary q = Quartiles(v);
  EXPECT_DOUBLE_EQ(q.iqr, 0.0);
  EXPECT_DOUBLE_EQ(q.median, 3.3);
}

TEST(RingWindowTest, FillsThenWraps) {
  RingWindow<int> w(3);
  EXPECT_TRUE(w.empty());
  w.Push(1);
  w.Push(2);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], 1);
  EXPECT_EQ(w[1], 2);
  w.Push(3);
  EXPECT_TRUE(w.full());
  w.Push(4);  // overwrites 1
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0], 2);
  EXPECT_EQ(w[1], 3);
  EXPECT_EQ(w[2], 4);
}

TEST(RingWindowTest, ToVectorOldestFirst) {
  RingWindow<int> w(4);
  for (int i = 0; i < 10; ++i) w.Push(i);
  EXPECT_EQ(w.ToVector(), (std::vector<int>{6, 7, 8, 9}));
}

TEST(RingWindowTest, ClearResets) {
  RingWindow<int> w(2);
  w.Push(1);
  w.Clear();
  EXPECT_TRUE(w.empty());
  w.Push(7);
  EXPECT_EQ(w[0], 7);
}

TEST(RingWindowTest, AsSpansContiguousBeforeWrap) {
  RingWindow<int> w(4);
  w.Push(1);
  w.Push(2);
  const SpanPair<int> view = w.AsSpans();
  EXPECT_EQ(view.size(), 2u);
  EXPECT_TRUE(view.second.empty());
  EXPECT_EQ(view.ToVector(), (std::vector<int>{1, 2}));
}

TEST(RingWindowTest, AsSpansAcrossWrapBoundary) {
  RingWindow<int> w(4);
  for (int i = 0; i < 6; ++i) w.Push(i);  // retains 2,3,4,5; head wrapped
  const SpanPair<int> view = w.AsSpans();
  EXPECT_EQ(view.size(), 4u);
  EXPECT_FALSE(view.first.empty());
  EXPECT_FALSE(view.second.empty());
  EXPECT_EQ(view.ToVector(), w.ToVector());
  for (size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view[i], w[i]);
  }
}

TEST(RingWindowTest, AsSpansEveryFillLevelMatchesToVector) {
  RingWindow<int> w(5);
  for (int i = 0; i < 17; ++i) {
    w.Push(i);
    const SpanPair<int> view = w.AsSpans();
    ASSERT_EQ(view.ToVector(), w.ToVector()) << "after push " << i;
  }
}

TEST(SpanPairTest, EmptyWindowYieldsEmptySpans) {
  RingWindow<int> w(3);
  const SpanPair<int> view = w.AsSpans();
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.size(), 0u);
}

TEST(SpanPairTest, SuffixWithinAndAcrossPieces) {
  const std::vector<int> a{1, 2, 3};
  const std::vector<int> b{4, 5};
  const SpanPair<int> view{std::span<const int>(a), std::span<const int>(b)};
  EXPECT_EQ(view.Suffix(10).ToVector(), (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(view.Suffix(5).ToVector(), (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(view.Suffix(4).ToVector(), (std::vector<int>{2, 3, 4, 5}));
  EXPECT_EQ(view.Suffix(2).ToVector(), (std::vector<int>{4, 5}));
  EXPECT_EQ(view.Suffix(1).ToVector(), (std::vector<int>{5}));
  EXPECT_EQ(view.Suffix(0).size(), 0u);
}

TEST(SpanPairTest, ForEachVisitsInLogicalOrder) {
  const std::vector<int> a{1, 2};
  const std::vector<int> b{3};
  const SpanPair<int> view{std::span<const int>(a), std::span<const int>(b)};
  std::vector<int> seen;
  view.ForEach([&seen](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(view[0], 1);
  EXPECT_EQ(view[2], 3);
}

TEST(HistogramTest, CountsAndMean) {
  Histogram h;
  h.Add(0.1);
  h.Add(0.2);
  h.Add(0.3);
  EXPECT_EQ(h.count(), 3);
  EXPECT_NEAR(h.mean(), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(h.min(), 0.1);
  EXPECT_DOUBLE_EQ(h.max(), 0.3);
}

TEST(HistogramTest, PercentileMonotone) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(i * 0.001);
  double last = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, last);
    last = v;
  }
  EXPECT_NEAR(h.Percentile(50), 0.5, 0.1);
}

TEST(HistogramTest, MergeAccumulates) {
  Histogram a, b;
  a.Add(0.5);
  b.Add(1.5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.max(), 1.5);
}

}  // namespace
}  // namespace fglb
