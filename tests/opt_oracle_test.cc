// Tests for the Belady/OPT oracle: hand-computed tiny traces, the
// OPT <= LRU dominance at every cache size, agreement of the Fenwick
// forward-distance sweep with an O(n^2) brute force, and the regret
// helper's clamping.

#include <algorithm>
#include <span>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "mrc/miss_ratio_curve.h"
#include "mrc/opt_oracle.h"

namespace fglb {
namespace {

std::vector<PageId> MakeZipfTrace(uint64_t pages, double theta, size_t n,
                                  uint64_t seed) {
  Rng rng(seed);
  ZipfGenerator zipf(pages, theta);
  std::vector<PageId> trace;
  trace.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    trace.push_back(MakePageId(1, ScrambleToDomain(zipf.Sample(rng), pages)));
  }
  return trace;
}

std::vector<PageId> Pages(std::initializer_list<uint64_t> ids) {
  std::vector<PageId> trace;
  for (uint64_t id : ids) trace.push_back(MakePageId(1, id));
  return trace;
}

// --- Hand-computed tiny traces ---

TEST(OptOracleTest, CyclicTraceMatchesHandComputation) {
  // a b c a b c with 2 frames: Belady misses a,b,c, then keeps `a`
  // (evicting b, whose reuse is farther), hits a, misses b (evicts the
  // now-dead a), hits c — 4 misses. LRU thrashes to 6.
  const std::vector<PageId> trace = Pages({1, 2, 3, 1, 2, 3});
  EXPECT_DOUBLE_EQ(OptMissRatioAt(trace, 1), 1.0);
  EXPECT_DOUBLE_EQ(OptMissRatioAt(trace, 2), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(OptMissRatioAt(trace, 3), 3.0 / 6.0);
  EXPECT_DOUBLE_EQ(OptMissRatioAt(trace, 100), 3.0 / 6.0);
  const MissRatioCurve lru =
      MissRatioCurve::FromTrace(std::span<const PageId>(trace));
  EXPECT_DOUBLE_EQ(lru.MissRatioAt(2), 1.0);  // the classic LRU loop worst case
}

TEST(OptOracleTest, BeladyClassicExampleMatchesHandComputation) {
  // The canonical OPT example (Silberschatz): the reference string
  // 7 0 1 2 0 3 0 4 2 3 0 3 2 1 2 0 1 7 0 1 with 3 frames incurs
  // exactly 9 page faults under Belady's algorithm.
  const std::vector<PageId> trace = Pages(
      {7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1});
  EXPECT_DOUBLE_EQ(OptMissRatioAt(trace, 3), 9.0 / 20.0);
}

TEST(OptOracleTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(OptMissRatioAt({}, 4), 1.0);
  const std::vector<PageId> one = Pages({5});
  EXPECT_DOUBLE_EQ(OptMissRatioAt(one, 0), 1.0);
  EXPECT_DOUBLE_EQ(OptMissRatioAt(one, 1), 1.0);
  const std::vector<PageId> repeats = Pages({5, 5, 5, 5});
  EXPECT_DOUBLE_EQ(OptMissRatioAt(repeats, 1), 0.25);
}

TEST(OptOracleTest, ForwardDistancesOnTinyTrace) {
  // a b a c b a: next-use marks by hand.
  const std::vector<PageId> trace = Pages({1, 2, 1, 3, 2, 1});
  const std::vector<uint64_t> d = OptForwardDistances(trace);
  ASSERT_EQ(d.size(), trace.size());
  EXPECT_EQ(d[0], 1u);          // a..a spans {b}
  EXPECT_EQ(d[1], 2u);          // b..b spans {a, c}
  EXPECT_EQ(d[2], 2u);          // a..a spans {c, b}
  EXPECT_EQ(d[3], kNoNextUse);  // c never recurs
  EXPECT_EQ(d[4], kNoNextUse);
  EXPECT_EQ(d[5], kNoNextUse);
}

// --- OPT dominance: no policy beats Belady ---

class OptDominanceTest
    : public ::testing::TestWithParam<std::vector<PageId> (*)()> {};

std::vector<PageId> SkewedTrace() { return MakeZipfTrace(600, 0.9, 12000, 3); }
std::vector<PageId> UniformTrace() { return MakeZipfTrace(800, 0.0, 12000, 5); }
std::vector<PageId> ScanTrace() {
  std::vector<PageId> trace;
  for (int r = 0; r < 15; ++r) {
    for (uint64_t i = 0; i < 700; ++i) trace.push_back(MakePageId(2, i));
  }
  return trace;
}

TEST_P(OptDominanceTest, OptNeverExceedsLruAtAnyCacheSize) {
  const std::vector<PageId> trace = GetParam()();
  const MissRatioCurve lru =
      MissRatioCurve::FromTrace(std::span<const PageId>(trace));
  double previous = 1.0;
  for (uint64_t cache = 1; cache <= lru.max_pages() + 8; cache += 37) {
    const double opt = OptMissRatioAt(trace, cache);
    EXPECT_LE(opt, lru.MissRatioAt(cache) + 1e-12) << "cache " << cache;
    // Belady with more frames never does worse (simulation sanity).
    EXPECT_LE(opt, previous + 1e-12) << "cache " << cache;
    previous = opt;
  }
}

INSTANTIATE_TEST_SUITE_P(Traces, OptDominanceTest,
                         ::testing::Values(&SkewedTrace, &UniformTrace,
                                           &ScanTrace));

// --- Fenwick sweep vs brute force ---

// Brute-force definition: the forward distance of reference i is the
// number of distinct pages referenced strictly between i and the next
// use of trace[i] (kNoNextUse when the page never recurs).
std::vector<uint64_t> BruteForceDistances(const std::vector<PageId>& trace) {
  const size_t n = trace.size();
  std::vector<uint64_t> result(n, kNoNextUse);
  for (size_t i = 0; i < n; ++i) {
    size_t next = n;
    for (size_t j = i + 1; j < n; ++j) {
      if (trace[j] == trace[i]) {
        next = j;
        break;
      }
    }
    if (next == n) continue;
    std::unordered_set<PageId> between;
    for (size_t j = i + 1; j < next; ++j) between.insert(trace[j]);
    result[i] = between.size();
  }
  return result;
}

TEST(OptForwardDistanceTest, FenwickMatchesBruteForce) {
  for (const uint64_t seed : {41u, 43u, 47u}) {
    for (const uint64_t alphabet : {3u, 17u, 120u}) {
      Rng rng(seed);
      std::vector<PageId> trace;
      const size_t n = 512;
      for (size_t i = 0; i < n; ++i) {
        trace.push_back(MakePageId(1, rng.NextUint64(alphabet)));
      }
      const std::vector<uint64_t> fast = OptForwardDistances(trace);
      const std::vector<uint64_t> slow = BruteForceDistances(trace);
      ASSERT_EQ(fast.size(), slow.size());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(fast[i], slow[i])
            << "seed " << seed << " alphabet " << alphabet << " index " << i;
      }
    }
  }
}

// --- Regret ---

TEST(RegretVsOptTest, NonNegativeAndZeroWhenLruIsOptimal) {
  // On a pure repeat trace LRU is optimal, so regret clamps to 0.
  const std::vector<PageId> repeats = Pages({1, 2, 1, 2, 1, 2, 1, 2});
  const MissRatioCurve lru =
      MissRatioCurve::FromTrace(std::span<const PageId>(repeats));
  EXPECT_DOUBLE_EQ(RegretVsOpt(repeats, lru, 2), 0.0);

  // On the cyclic trace LRU pays 1.0 at 2 frames while OPT pays 4/6:
  // the regret is exactly the gap.
  const std::vector<PageId> cyclic = Pages({1, 2, 3, 1, 2, 3});
  const MissRatioCurve cyclic_lru =
      MissRatioCurve::FromTrace(std::span<const PageId>(cyclic));
  EXPECT_DOUBLE_EQ(RegretVsOpt(cyclic, cyclic_lru, 2), 1.0 - 4.0 / 6.0);
  EXPECT_GE(RegretVsOpt(cyclic, cyclic_lru, 3), 0.0);
}

}  // namespace
}  // namespace fglb
