#include "workload/access_generator.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "workload/application.h"
#include "workload/client_emulator.h"
#include "workload/load_function.h"
#include "workload/query_sink.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

TEST(ClassKeyTest, PackUnpack) {
  const ClassKey key = MakeClassKey(3, 17);
  EXPECT_EQ(AppOf(key), 3u);
  EXPECT_EQ(ClassOf(key), 17u);
  EXPECT_NE(MakeClassKey(1, 2), MakeClassKey(2, 1));
}

TEST(AccessGeneratorTest, PointLookupsStayInRegion) {
  AccessComponent c;
  c.table = 5;
  c.table_pages = 10000;
  c.region_offset = 2000;
  c.region_pages = 500;
  c.kind = AccessComponent::Kind::kPointLookups;
  c.zipf_theta = 0.9;
  c.mean_pages = 50;
  QueryTemplate tmpl;
  tmpl.id = 1;
  tmpl.components = {c};

  AccessGenerator gen;
  Rng rng(1);
  std::vector<PageAccess> out;
  for (int i = 0; i < 50; ++i) gen.Generate(tmpl, rng, &out);
  ASSERT_FALSE(out.empty());
  for (const PageAccess& a : out) {
    EXPECT_EQ(TableOf(a.page), 5);
    EXPECT_GE(OffsetOf(a.page), 2000u);
    EXPECT_LT(OffsetOf(a.page), 2500u);
    EXPECT_EQ(a.kind, AccessKind::kRandom);
    EXPECT_FALSE(a.is_write);
  }
}

TEST(AccessGeneratorTest, CountNearMean) {
  AccessComponent c;
  c.table = 1;
  c.table_pages = 1000;
  c.kind = AccessComponent::Kind::kPointLookups;
  c.mean_pages = 100;
  QueryTemplate tmpl;
  tmpl.components = {c};

  AccessGenerator gen;
  Rng rng(2);
  double total = 0;
  const int reps = 200;
  for (int i = 0; i < reps; ++i) {
    std::vector<PageAccess> out;
    gen.Generate(tmpl, rng, &out);
    EXPECT_GE(out.size(), 70u);
    EXPECT_LE(out.size(), 130u);
    total += static_cast<double>(out.size());
  }
  EXPECT_NEAR(total / reps, 100.0, 5.0);
}

TEST(AccessGeneratorTest, SequentialScanIsContiguous) {
  AccessComponent c;
  c.table = 2;
  c.table_pages = 100000;
  c.region_pages = 10000;
  c.kind = AccessComponent::Kind::kSequentialScan;
  c.mean_pages = 200;
  QueryTemplate tmpl;
  tmpl.components = {c};

  AccessGenerator gen;
  Rng rng(3);
  std::vector<PageAccess> out;
  gen.Generate(tmpl, rng, &out);
  ASSERT_GE(out.size(), 2u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_EQ(out[i].kind, AccessKind::kSequential);
    const uint64_t prev = OffsetOf(out[i - 1].page);
    const uint64_t cur = OffsetOf(out[i].page);
    // Contiguous modulo region wrap.
    EXPECT_TRUE(cur == prev + 1 || (prev == 9999 && cur == 0));
  }
}

TEST(AccessGeneratorTest, WriteFractionProducesWrites) {
  AccessComponent c;
  c.table = 1;
  c.table_pages = 100;
  c.kind = AccessComponent::Kind::kPointLookups;
  c.mean_pages = 50;
  c.write_fraction = 0.5;
  QueryTemplate tmpl;
  tmpl.components = {c};

  AccessGenerator gen;
  Rng rng(4);
  int writes = 0, total = 0;
  for (int i = 0; i < 100; ++i) {
    std::vector<PageAccess> out;
    gen.Generate(tmpl, rng, &out);
    for (const auto& a : out) {
      ++total;
      writes += a.is_write;
    }
  }
  EXPECT_NEAR(static_cast<double>(writes) / total, 0.5, 0.05);
}

TEST(TpcwSpecTest, WellFormed) {
  const ApplicationSpec app = MakeTpcw();
  EXPECT_EQ(app.name, "TPC-W");
  EXPECT_EQ(app.templates.size(), app.mix_weights.size());
  EXPECT_EQ(app.templates.size(), 14u);
  double total = 0;
  for (double w : app.mix_weights) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Paper ids preserved.
  EXPECT_EQ(app.FindTemplate(kTpcwBestSeller)->name, "BestSeller");
  EXPECT_EQ(app.FindTemplate(kTpcwNewProducts)->name, "NewProducts");
  // Shopping mix is ~20% writes.
  EXPECT_NEAR(app.WriteFraction(), 0.2, 0.06);
}

TEST(TpcwSpecTest, MixesShiftWriteFraction) {
  TpcwOptions browsing, shopping, ordering;
  browsing.mix = TpcwMix::kBrowsing;
  shopping.mix = TpcwMix::kShopping;
  ordering.mix = TpcwMix::kOrdering;
  const double b = MakeTpcw(browsing).WriteFraction();
  const double s = MakeTpcw(shopping).WriteFraction();
  const double o = MakeTpcw(ordering).WriteFraction();
  EXPECT_LT(b, s);
  EXPECT_LT(s, o);
  EXPECT_NEAR(b, 0.05, 0.03);
  EXPECT_NEAR(o, 0.50, 0.12);
}

TEST(TpcwSpecTest, MixWeightsNormalized) {
  for (TpcwMix mix :
       {TpcwMix::kBrowsing, TpcwMix::kShopping, TpcwMix::kOrdering}) {
    TpcwOptions options;
    options.mix = mix;
    const ApplicationSpec app = MakeTpcw(options);
    double total = 0;
    for (double w : app.mix_weights) total += w;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(TpcwSpecTest, IndexDropChangesBestSellerOnly) {
  TpcwOptions with, without;
  without.o_date_index = false;
  const ApplicationSpec a = MakeTpcw(with);
  const ApplicationSpec b = MakeTpcw(without);
  for (size_t i = 0; i < a.templates.size(); ++i) {
    if (a.templates[i].id == kTpcwBestSeller) {
      EXPECT_NE(a.templates[i].components[0].kind,
                b.templates[i].components[0].kind);
    } else {
      EXPECT_EQ(a.templates[i].components.size(),
                b.templates[i].components.size());
    }
  }
  // Without the index, BestSeller becomes a scan.
  EXPECT_EQ(b.FindTemplate(kTpcwBestSeller)->components[0].kind,
            AccessComponent::Kind::kSequentialScan);
}

TEST(RubisSpecTest, WellFormed) {
  const ApplicationSpec app = MakeRubis();
  EXPECT_EQ(app.templates.size(), 12u);
  double total = 0;
  for (double w : app.mix_weights) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Bidding mix ~15% writes.
  EXPECT_NEAR(app.WriteFraction(), 0.15, 0.03);
  EXPECT_EQ(app.FindTemplate(kRubisSearchItemsByRegion)->name,
            "SearchItemsByRegion");
}

TEST(RubisSpecTest, SearchItemsByRegionIsHeaviest) {
  const ApplicationSpec app = MakeRubis();
  const QueryTemplate* sibr = app.FindTemplate(kRubisSearchItemsByRegion);
  for (const auto& t : app.templates) {
    if (t.id == kRubisSearchItemsByRegion) continue;
    EXPECT_GT(sibr->MeanPages(), t.MeanPages());
  }
}

TEST(RubisSpecTest, DisjointTableBasesDoNotCollide) {
  RubisOptions second;
  second.app_id = 3;
  second.table_base = 21;
  const ApplicationSpec a = MakeRubis();
  const ApplicationSpec b = MakeRubis(second);
  std::set<TableId> tables_a, tables_b;
  for (const auto& t : a.templates) {
    for (const auto& c : t.components) tables_a.insert(c.table);
  }
  for (const auto& t : b.templates) {
    for (const auto& c : t.components) tables_b.insert(c.table);
  }
  for (TableId t : tables_a) EXPECT_FALSE(tables_b.contains(t));
}

TEST(LoadFunctionTest, Constant) {
  ConstantLoad load(25);
  EXPECT_DOUBLE_EQ(load.TargetClients(0), 25.0);
  EXPECT_DOUBLE_EQ(load.TargetClients(1e6), 25.0);
}

TEST(LoadFunctionTest, SineOscillatesAndFloorsAtZero) {
  SineLoad load(10, 20, 100);  // dips below zero -> floored
  EXPECT_DOUBLE_EQ(load.TargetClients(0), 10.0);
  EXPECT_NEAR(load.TargetClients(25), 30.0, 1e-9);  // peak
  EXPECT_DOUBLE_EQ(load.TargetClients(75), 0.0);    // floored trough
}

TEST(LoadFunctionTest, StepSchedule) {
  StepLoad load({{10, 5}, {20, 50}});
  EXPECT_DOUBLE_EQ(load.TargetClients(0), 0.0);
  EXPECT_DOUBLE_EQ(load.TargetClients(10), 5.0);
  EXPECT_DOUBLE_EQ(load.TargetClients(15), 5.0);
  EXPECT_DOUBLE_EQ(load.TargetClients(25), 50.0);
}

// A sink that completes every query after a fixed delay.
class FixedDelaySink : public QuerySink {
 public:
  FixedDelaySink(Simulator* sim, double delay) : sim_(sim), delay_(delay) {}
  void Submit(const QueryInstance& query,
              CompletionCallback on_complete) override {
    ++submitted_;
    by_class_[query.tmpl->id]++;
    sim_->ScheduleAfter(
        delay_, [this, on_complete = std::move(on_complete)]() mutable {
          if (on_complete) on_complete(delay_);
        });
  }
  uint64_t submitted() const { return submitted_; }
  const std::map<QueryClassId, uint64_t>& by_class() const {
    return by_class_;
  }

 private:
  Simulator* sim_;
  double delay_;
  uint64_t submitted_ = 0;
  std::map<QueryClassId, uint64_t> by_class_;
};

TEST(ClientEmulatorTest, ClosedLoopThroughputMatchesLittle) {
  Simulator sim;
  ApplicationSpec app = MakeTpcw();
  app.think_time_seconds = 1.0;
  FixedDelaySink sink(&sim, 0.5);
  ConstantLoad load(20);
  ClientEmulator::Options options;
  options.noise_fraction = 0;
  ClientEmulator emulator(&sim, &app, &sink, &load, 7, options);
  emulator.Start();
  sim.RunUntil(300);
  // Little's law: N = X * (think + latency) -> X = 20 / 1.5.
  const double rate = static_cast<double>(emulator.completed_queries()) / 300;
  EXPECT_NEAR(rate, 20.0 / 1.5, 1.5);
  EXPECT_EQ(emulator.active_clients(), 20u);
}

TEST(ClientEmulatorTest, TracksLoadFunctionDown) {
  Simulator sim;
  ApplicationSpec app = MakeRubis();
  app.think_time_seconds = 0.5;
  FixedDelaySink sink(&sim, 0.1);
  StepLoad load({{0, 30}, {100, 5}});
  ClientEmulator::Options options;
  options.noise_fraction = 0;
  ClientEmulator emulator(&sim, &app, &sink, &load, 9, options);
  emulator.Start();
  sim.RunUntil(90);
  EXPECT_EQ(emulator.active_clients(), 30u);
  sim.RunUntil(150);
  EXPECT_EQ(emulator.active_clients(), 5u);
}

TEST(ClientEmulatorTest, StopDrainsPopulation) {
  Simulator sim;
  ApplicationSpec app = MakeTpcw();
  FixedDelaySink sink(&sim, 0.1);
  ConstantLoad load(10);
  ClientEmulator::Options options;
  options.noise_fraction = 0;
  ClientEmulator emulator(&sim, &app, &sink, &load, 11, options);
  emulator.Start();
  sim.RunUntil(50);
  emulator.Stop();
  sim.RunUntil(100);
  EXPECT_EQ(emulator.active_clients(), 0u);
}

TEST(ClientEmulatorTest, MixRoughlyRespected) {
  Simulator sim;
  ApplicationSpec app = MakeTpcw();
  app.think_time_seconds = 0.1;
  FixedDelaySink sink(&sim, 0.01);
  ConstantLoad load(50);
  ClientEmulator::Options options;
  options.noise_fraction = 0;
  ClientEmulator emulator(&sim, &app, &sink, &load, 13, options);
  emulator.Start();
  sim.RunUntil(200);
  ASSERT_GT(sink.submitted(), 10000u);
  // ProductDetail holds 23% of the mix.
  const double share =
      static_cast<double>(sink.by_class().at(kTpcwProductDetail)) /
      static_cast<double>(sink.submitted());
  EXPECT_NEAR(share, 0.23, 0.03);
}

}  // namespace
}  // namespace fglb
