#include <gtest/gtest.h>

#include "scenarios/harness.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

// Failure-injection style tests: components are removed or broken
// while work is in flight; the system must degrade gracefully, never
// crash, and recover where the controller can.

TEST(FailureInjectionTest, DecommissionUnderLoadDrainsSafely) {
  ClusterHarness h;
  h.AddServers(2);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* a = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  Replica* b = h.resources().CreateReplica(h.resources().servers()[1].get(),
                                           8192);
  tpcw->AddReplica(a);
  tpcw->AddReplica(b);
  h.AddConstantClients(tpcw, 80, /*seed=*/21);
  h.Start();
  h.RunFor(60);
  // Pull replica b while it has queries in flight.
  EXPECT_GT(b->inflight() + b->completed(), 0u);
  h.resources().Decommission(tpcw, b);
  h.RunFor(120);
  // Work continues on a; no queries are lost (the emulator's closed
  // loop would stall otherwise).
  const auto summary = h.Summarize(tpcw->app().id, 70, 180);
  EXPECT_GT(summary.queries, 500u);
  EXPECT_EQ(tpcw->replicas().size(), 1u);
}

TEST(FailureInjectionTest, LosingTheOnlyReplicaTriggersReprovisioning) {
  ClusterHarness h;
  h.AddServers(2);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* only = h.resources().CreateReplica(
      h.resources().servers()[0].get(), 8192);
  tpcw->AddReplica(only);
  h.AddConstantClients(tpcw, 20, /*seed=*/23);
  h.Start();
  h.RunFor(100);
  // The replica "fails" (operator removes it).
  h.resources().Decommission(tpcw, only);
  EXPECT_TRUE(tpcw->replicas().empty());
  h.RunFor(100);
  // The controller bootstrap-provisions a replacement and service
  // resumes within the SLA.
  EXPECT_GE(tpcw->replicas().size(), 1u);
  const auto tail = h.Summarize(tpcw->app().id, 150, 200);
  EXPECT_GT(tail.queries, 0u);
  EXPECT_LT(tail.avg_latency, tpcw->app().sla_latency_seconds);
}

TEST(FailureInjectionTest, EmulatorStopMidRunLeavesSystemQuiescent) {
  ClusterHarness h;
  h.AddServers(1);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  ClientEmulator* clients = h.AddConstantClients(tpcw, 40, /*seed=*/25);
  h.Start();
  h.RunFor(60);
  clients->Stop();
  h.RunFor(120);
  EXPECT_EQ(clients->active_clients(), 0u);
  EXPECT_EQ(r->inflight(), 0u);
  // Idle intervals are SLA-clean by definition.
  const auto tail = h.Summarize(tpcw->app().id, 120, 180);
  EXPECT_EQ(tail.sla_violations, 0);
}

TEST(FailureInjectionTest, ExhaustedServerPoolDegradesGracefully) {
  // Demand needs ~3 servers; the pool only has 1. The controller keeps
  // trying, nothing crashes, and throughput saturates at one server's
  // capacity.
  ClusterHarness h;
  h.AddServers(1);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.AddConstantClients(tpcw, 900, /*seed=*/27);
  h.Start();
  h.RunFor(400);
  EXPECT_EQ(h.resources().ServersUsedBy(*tpcw), 1);
  const auto summary = h.Summarize(tpcw->app().id, 200, 400);
  EXPECT_GT(summary.avg_throughput, 100.0);  // still serving
  EXPECT_GT(summary.sla_violations, 0);      // but over the SLA
}

TEST(FailureInjectionTest, MidRunWorkloadSwapDoesNotBreakDeterminism) {
  auto run = [] {
    ClusterHarness h;
    h.AddServers(3);
    Scheduler* tpcw = h.AddApplication(MakeTpcw());
    Replica* r = h.resources().CreateReplica(
        h.resources().servers()[0].get(), 8192);
    tpcw->AddReplica(r);
    h.AddConstantClients(tpcw, 100, /*seed=*/29);
    h.Start();
    h.RunFor(200);
    TpcwOptions no_index;
    no_index.o_date_index = false;
    const ApplicationSpec degraded = MakeTpcw(no_index);
    ApplicationSpec* live = h.mutable_app(tpcw);
    for (auto& tmpl : live->templates) {
      if (tmpl.id == kTpcwBestSeller) {
        tmpl.components = degraded.FindTemplate(kTpcwBestSeller)->components;
      }
    }
    h.RunFor(300);
    return std::make_tuple(tpcw->total_completed(),
                           h.retuner().actions().size(),
                           h.retuner().diagnoses().size());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace fglb
