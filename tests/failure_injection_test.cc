#include <gtest/gtest.h>

#include <vector>

#include "scenarios/harness.h"
#include "storage/page.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

// Failure-injection style tests: components are removed or broken
// while work is in flight; the system must degrade gracefully, never
// crash, and recover where the controller can.

TEST(FailureInjectionTest, DecommissionUnderLoadDrainsSafely) {
  ClusterHarness h;
  h.AddServers(2);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* a = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  Replica* b = h.resources().CreateReplica(h.resources().servers()[1].get(),
                                           8192);
  tpcw->AddReplica(a);
  tpcw->AddReplica(b);
  h.AddConstantClients(tpcw, 80, /*seed=*/21);
  h.Start();
  h.RunFor(60);
  // Pull replica b while it has queries in flight.
  EXPECT_GT(b->inflight() + b->completed(), 0u);
  h.resources().Decommission(tpcw, b);
  h.RunFor(120);
  // Work continues on a; no queries are lost (the emulator's closed
  // loop would stall otherwise).
  const auto summary = h.Summarize(tpcw->app().id, 70, 180);
  EXPECT_GT(summary.queries, 500u);
  EXPECT_EQ(tpcw->replicas().size(), 1u);
}

// An application whose single update template writes only inside the
// first lock stripe of table 1, so one externally-held stripe wedges
// every commit forever.
ApplicationSpec OneStripeApp() {
  ApplicationSpec app;
  app.id = 9;
  app.name = "wedge";
  QueryTemplate update;
  update.id = 1;
  update.name = "upd";
  AccessComponent component;
  component.table = 1;
  component.table_pages = kLockStripePages;  // region == one stripe
  component.mean_pages = 16;
  component.write_fraction = 1.0;
  update.components = {component};
  update.is_update = true;
  app.templates = {update};
  app.mix_weights = {1.0};
  return app;
}

TEST(FailureInjectionTest, WedgedReplicaDrainTimesOutIntoZombie) {
  ClusterHarness h;
  h.AddServers(1);
  Scheduler* app = h.AddApplication(OneStripeApp());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  app->AddReplica(r);
  // An external holder takes the only stripe the workload commits to
  // and never releases it: every update now wedges at commit.
  r->locks().AcquireAll({StripeOf(MakePageId(1, 0))}, [](double) {});
  QueryInstance q;
  q.app = app->app().id;
  q.tmpl = app->app().FindTemplate(1);
  for (int i = 0; i < 3; ++i) r->Run(q, nullptr);
  h.RunFor(5);
  ASSERT_GT(r->inflight(), 0u);

  h.resources().set_drain_timeout_seconds(20);
  h.resources().Decommission(app, r);
  // Before drains were deadline-bounded, the decommission poll
  // rescheduled itself forever and this never returned.
  h.sim().RunToCompletion();
  EXPECT_GE(h.sim().Now(), 25.0);
  EXPECT_EQ(h.resources().zombie_count(), 1u);
  // The wedged replica is no longer live (placement ignores it) but
  // its memory object survives for the stuck completion callbacks.
  EXPECT_EQ(h.resources().FindReplica(r->id()), nullptr);
  EXPECT_EQ(h.metrics().counter("cluster.drain_timeouts")->value(), 1u);
}

TEST(FailureInjectionTest, DrainTimeoutEmitsFaultTraceEvent) {
  ClusterHarness h;
  h.trace().EnableBuffering();
  h.AddServers(1);
  Scheduler* app = h.AddApplication(OneStripeApp());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  app->AddReplica(r);
  r->locks().AcquireAll({StripeOf(MakePageId(1, 0))}, [](double) {});
  QueryInstance q;
  q.app = app->app().id;
  q.tmpl = app->app().FindTemplate(1);
  for (int i = 0; i < 3; ++i) r->Run(q, nullptr);
  h.RunFor(5);
  ASSERT_GT(r->inflight(), 0u);
  const int wedged_id = r->id();

  h.resources().set_drain_timeout_seconds(20);
  h.resources().Decommission(app, r);
  h.sim().RunToCompletion();
  ASSERT_EQ(h.resources().zombie_count(), 1u);

  // The deadline expiry is an operator-visible fault event carrying
  // which replica was abandoned and how deep the zombie pool now is.
  bool found = false;
  for (const std::string& line : h.trace().BufferedLines()) {
    if (line.find("\"phase\":\"fault\"") == std::string::npos) continue;
    if (line.find("\"kind\":\"drain_timeout\"") == std::string::npos) continue;
    found = true;
    EXPECT_NE(line.find("\"replica\":" + std::to_string(wedged_id)),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"zombies\":1"), std::string::npos) << line;
  }
  EXPECT_TRUE(found);
}

TEST(FailureInjectionTest, LosingTheOnlyReplicaTriggersReprovisioning) {
  ClusterHarness h;
  h.AddServers(2);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* only = h.resources().CreateReplica(
      h.resources().servers()[0].get(), 8192);
  tpcw->AddReplica(only);
  h.AddConstantClients(tpcw, 20, /*seed=*/23);
  h.Start();
  h.RunFor(100);
  // The replica "fails" (operator removes it).
  h.resources().Decommission(tpcw, only);
  EXPECT_TRUE(tpcw->replicas().empty());
  h.RunFor(100);
  // The controller bootstrap-provisions a replacement and service
  // resumes within the SLA.
  EXPECT_GE(tpcw->replicas().size(), 1u);
  const auto tail = h.Summarize(tpcw->app().id, 150, 200);
  EXPECT_GT(tail.queries, 0u);
  EXPECT_LT(tail.avg_latency, tpcw->app().sla_latency_seconds);
}

TEST(FailureInjectionTest, EmulatorStopMidRunLeavesSystemQuiescent) {
  ClusterHarness h;
  h.AddServers(1);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  ClientEmulator* clients = h.AddConstantClients(tpcw, 40, /*seed=*/25);
  h.Start();
  h.RunFor(60);
  clients->Stop();
  h.RunFor(120);
  EXPECT_EQ(clients->active_clients(), 0u);
  EXPECT_EQ(r->inflight(), 0u);
  // Idle intervals are SLA-clean by definition.
  const auto tail = h.Summarize(tpcw->app().id, 120, 180);
  EXPECT_EQ(tail.sla_violations, 0);
}

TEST(FailureInjectionTest, ExhaustedServerPoolDegradesGracefully) {
  // Demand needs ~3 servers; the pool only has 1. The controller keeps
  // trying, nothing crashes, and throughput saturates at one server's
  // capacity.
  ClusterHarness h;
  h.AddServers(1);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.AddConstantClients(tpcw, 900, /*seed=*/27);
  h.Start();
  h.RunFor(400);
  EXPECT_EQ(h.resources().ServersUsedBy(*tpcw), 1);
  const auto summary = h.Summarize(tpcw->app().id, 200, 400);
  EXPECT_GT(summary.avg_throughput, 100.0);  // still serving
  EXPECT_GT(summary.sla_violations, 0);      // but over the SLA
}

TEST(FailureInjectionTest, MidRunWorkloadSwapDoesNotBreakDeterminism) {
  auto run = [] {
    ClusterHarness h;
    h.AddServers(3);
    Scheduler* tpcw = h.AddApplication(MakeTpcw());
    Replica* r = h.resources().CreateReplica(
        h.resources().servers()[0].get(), 8192);
    tpcw->AddReplica(r);
    h.AddConstantClients(tpcw, 100, /*seed=*/29);
    h.Start();
    h.RunFor(200);
    TpcwOptions no_index;
    no_index.o_date_index = false;
    const ApplicationSpec degraded = MakeTpcw(no_index);
    ApplicationSpec* live = h.mutable_app(tpcw);
    for (auto& tmpl : live->templates) {
      if (tmpl.id == kTpcwBestSeller) {
        tmpl.components = degraded.FindTemplate(kTpcwBestSeller)->components;
      }
    }
    h.RunFor(300);
    return std::make_tuple(tpcw->total_completed(),
                           h.retuner().actions().size(),
                           h.retuner().diagnoses().size());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace fglb
