// Overload-protection subsystem: CoDel-style per-replica shedding,
// per-(class, replica) circuit breakers, the bounded retry budget, the
// scheduler's breaker-aware routing fallback, and the end-to-end claim
// the subsystem exists for — at 3x overload, admission control keeps at
// least one query class inside its SLA and raises goodput instead of
// letting every class fail together. All of it deterministic: the last
// test replays a captured overload run and requires the admission trace
// to come back byte for byte.

#include "cluster/admission.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/json.h"
#include "replay/capture.h"
#include "replay/replayer.h"
#include "scenarios/harness.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

JsonValue MustParse(const std::string& line) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(JsonValue::Parse(line, &value, &error))
      << error << " in: " << line;
  return value;
}

// The phase=admission events of a buffered trace, optionally narrowed
// to one transition kind.
std::vector<JsonValue> AdmissionEvents(const std::vector<std::string>& lines,
                                       const std::string& kind = "") {
  std::vector<JsonValue> events;
  for (const std::string& line : lines) {
    JsonValue event = MustParse(line);
    if (event.StringOr("phase", "") != "admission") continue;
    if (!kind.empty() && event.StringOr("kind", "") != kind) continue;
    events.push_back(std::move(event));
  }
  return events;
}

TEST(AdmissionConfigTest, ToStringParseRoundTrip) {
  const AdmissionConfig defaults;
  EXPECT_EQ(defaults.ToString(),
            "target=0.5,interval=5,queue=96,retry_ratio=0.1,retry_burst=8,"
            "breaker_threshold=8,breaker_open=10,probes=3,timeout_factor=8,"
            "alpha=0.2");

  AdmissionConfig custom;
  custom.target_delay = 0.25;
  custom.codel_interval_seconds = 2.5;
  custom.max_queue_depth = 64;
  custom.retry_budget_ratio = 0.05;
  custom.retry_burst = 4;
  custom.breaker_failure_threshold = 3;
  custom.breaker_open_seconds = 7.5;
  custom.breaker_half_open_probes = 2;
  custom.timeout_factor = 6;
  custom.ewma_alpha = 0.5;

  AdmissionConfig parsed;
  std::string error;
  ASSERT_TRUE(AdmissionConfig::Parse(custom.ToString(), &parsed, &error))
      << error;
  EXPECT_EQ(parsed.ToString(), custom.ToString());

  // Key order is free; unknown keys and out-of-range values are not.
  ASSERT_TRUE(AdmissionConfig::Parse("queue=32,target=1", &parsed, &error));
  EXPECT_EQ(parsed.max_queue_depth, 32u);
  EXPECT_DOUBLE_EQ(parsed.target_delay, 1.0);
  EXPECT_FALSE(AdmissionConfig::Parse("bogus=1", &parsed, &error));
  EXPECT_NE(error.find("unknown"), std::string::npos);
  EXPECT_FALSE(AdmissionConfig::Parse("target=0", &parsed, &error));
  EXPECT_FALSE(AdmissionConfig::Parse("alpha=2", &parsed, &error));
  EXPECT_FALSE(AdmissionConfig::Parse("probes", &parsed, &error));
}

TEST(AdmissionControllerTest, CodelShedsWorstClassFirstAndRecovers) {
  Simulator sim;
  AdmissionConfig config;
  config.target_delay = 0.5;
  config.codel_interval_seconds = 5;
  AdmissionController admission(&sim, config);
  TraceLog trace;
  trace.EnableBuffering();
  admission.BindObservability(nullptr, &trace);
  admission.RegisterApp(1, 1.0);

  const ClassKey k1 = MakeClassKey(1, 1);
  const ClassKey k2 = MakeClassKey(1, 2);
  const ClassKey k3 = MakeClassKey(1, 3);

  // A window where even the *best* completion sits above target, with
  // class 3 the furthest over its SLA.
  sim.ScheduleAt(1, [&] {
    admission.OnComplete(k1, 0, 0.8);
    admission.OnComplete(k2, 0, 1.5);
    admission.OnComplete(k3, 0, 3.0);
  });
  sim.ScheduleAt(7, [&] {
    // Rolling the elapsed window sheds exactly one class: the worst.
    EXPECT_EQ(admission.Admit(k1, 0, 0).decision,
              AdmissionController::Decision::kAdmit);
    EXPECT_EQ(admission.KeepCount(0), 2);
    EXPECT_FALSE(admission.IsShed(k1, 0));
    EXPECT_FALSE(admission.IsShed(k2, 0));
    EXPECT_TRUE(admission.IsShed(k3, 0));
    const auto verdict = admission.Admit(k3, 0, 0);
    EXPECT_EQ(verdict.decision, AdmissionController::Decision::kShed);
    EXPECT_STREQ(verdict.reason, "codel");
  });
  // A clean window restores the shed class.
  sim.ScheduleAt(8, [&] {
    admission.OnComplete(k1, 0, 0.2);
    admission.OnComplete(k2, 0, 0.2);
  });
  sim.ScheduleAt(13, [&] {
    EXPECT_EQ(admission.Admit(k3, 0, 0).decision,
              AdmissionController::Decision::kAdmit);
    EXPECT_EQ(admission.KeepCount(0), 3);
    EXPECT_FALSE(admission.IsShed(k3, 0));
  });
  sim.RunToCompletion();

  // Both transitions are visible as phase=admission shed_level events.
  const auto levels = AdmissionEvents(trace.BufferedLines(), "shed_level");
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0].StringOr("why", ""), "overload");
  EXPECT_DOUBLE_EQ(levels[0].NumberOr("keep", -1), 2);
  EXPECT_EQ(levels[1].StringOr("why", ""), "recovery");
  EXPECT_DOUBLE_EQ(levels[1].NumberOr("keep", -1), 3);
  EXPECT_EQ(admission.shed(), 1u);
}

TEST(AdmissionControllerTest, FullQueueShedsRegardlessOfLatency) {
  Simulator sim;
  AdmissionConfig config;
  config.max_queue_depth = 4;
  AdmissionController admission(&sim, config);
  MetricsRegistry metrics;
  admission.BindObservability(&metrics, nullptr);
  admission.RegisterApp(1, 1.0);

  const ClassKey key = MakeClassKey(1, 1);
  EXPECT_EQ(admission.Admit(key, 0, 3).decision,
            AdmissionController::Decision::kAdmit);
  const auto verdict = admission.Admit(key, 0, 4);
  EXPECT_EQ(verdict.decision, AdmissionController::Decision::kShed);
  EXPECT_STREQ(verdict.reason, "queue_full");
  EXPECT_EQ(metrics.counter("admission.shed.queue_full")->value(), 1u);
  EXPECT_EQ(metrics.counter("admission.admitted")->value(), 1u);
}

TEST(AdmissionControllerTest, BreakerTripsHalfOpensClosesAndReopens) {
  Simulator sim;
  AdmissionConfig config;
  config.breaker_failure_threshold = 3;
  config.breaker_open_seconds = 10;
  config.breaker_half_open_probes = 2;
  config.timeout_factor = 8;  // failure = latency > 8s at a 1s SLA
  AdmissionController admission(&sim, config);
  MetricsRegistry metrics;
  TraceLog trace;
  trace.EnableBuffering();
  admission.BindObservability(&metrics, &trace);
  admission.RegisterApp(1, 1.0);
  const ClassKey key = MakeClassKey(1, 1);

  // Three consecutive timeouts trip the breaker open: the replica is
  // routed around but never shed against (single-replica safety).
  for (int i = 0; i < 3; ++i) admission.OnComplete(key, 0, 9.0);
  EXPECT_TRUE(admission.BreakerOpen(0));
  EXPECT_FALSE(admission.RouteAllowed(key, 0));
  EXPECT_EQ(metrics.counter("admission.breaker.trips")->value(), 1u);

  sim.ScheduleAt(11, [&] {
    // Open window elapsed: half-open, both probes admitted as probes,
    // two successes close the breaker.
    EXPECT_TRUE(admission.RouteAllowed(key, 0));
    EXPECT_EQ(admission.Admit(key, 0, 0).decision,
              AdmissionController::Decision::kProbe);
    admission.OnComplete(key, 0, 0.4);
    EXPECT_EQ(admission.Admit(key, 0, 0).decision,
              AdmissionController::Decision::kProbe);
    admission.OnComplete(key, 0, 0.4);
    EXPECT_FALSE(admission.BreakerOpen(0));
    EXPECT_TRUE(admission.RouteAllowed(key, 0));
    EXPECT_EQ(admission.Admit(key, 0, 0).decision,
              AdmissionController::Decision::kAdmit);
    EXPECT_EQ(metrics.counter("admission.breaker.half_opens")->value(), 1u);
    EXPECT_EQ(metrics.counter("admission.breaker.closes")->value(), 1u);

    // Trip again; this time the half-open probe fails and re-opens.
    for (int i = 0; i < 3; ++i) admission.OnComplete(key, 0, 9.0);
    EXPECT_TRUE(admission.BreakerOpen(0));
  });
  sim.ScheduleAt(22, [&] {
    EXPECT_EQ(admission.Admit(key, 0, 0).decision,
              AdmissionController::Decision::kProbe);
    admission.OnComplete(key, 0, 9.0);
    EXPECT_TRUE(admission.BreakerOpen(0));
    EXPECT_FALSE(admission.RouteAllowed(key, 0));
    EXPECT_EQ(metrics.counter("admission.breaker.reopens")->value(), 1u);
  });
  sim.RunToCompletion();

  // The whole lifecycle is visible as phase=admission events.
  const std::vector<std::string> lines = trace.BufferedLines();
  EXPECT_EQ(AdmissionEvents(lines, "trip").size(), 2u);
  EXPECT_EQ(AdmissionEvents(lines, "half_open").size(), 2u);
  EXPECT_EQ(AdmissionEvents(lines, "probe").size(), 3u);
  EXPECT_EQ(AdmissionEvents(lines, "close").size(), 1u);
  EXPECT_EQ(AdmissionEvents(lines, "reopen").size(), 1u);
}

TEST(AdmissionControllerTest, RetryBudgetExhaustsAndRefills) {
  Simulator sim;
  AdmissionConfig config;
  config.retry_budget_ratio = 0.5;
  config.retry_burst = 2;
  AdmissionController admission(&sim, config);
  MetricsRegistry metrics;
  TraceLog trace;
  trace.EnableBuffering();
  admission.BindObservability(&metrics, &trace);
  admission.RegisterApp(1, 1.0);
  const ClassKey key = MakeClassKey(1, 1);

  // 4 admits accrue 0.5 tokens each, capped at the burst of 2.
  for (int i = 0; i < 4; ++i) admission.Admit(key, 0, 0);
  EXPECT_DOUBLE_EQ(admission.RetryTokens(1), 2.0);
  EXPECT_TRUE(admission.TryRetry(1));
  EXPECT_TRUE(admission.TryRetry(1));
  EXPECT_FALSE(admission.TryRetry(1));
  EXPECT_FALSE(admission.TryRetry(1));
  EXPECT_EQ(metrics.counter("admission.retry.granted")->value(), 2u);
  EXPECT_EQ(metrics.counter("admission.retry.denied")->value(), 2u);
  // The exhaustion transition traces once, not once per denial.
  EXPECT_EQ(AdmissionEvents(trace.BufferedLines(), "retry_exhausted").size(),
            1u);

  // Fresh admitted traffic refills the bucket and re-arms the note.
  for (int i = 0; i < 2; ++i) admission.Admit(key, 0, 0);
  EXPECT_TRUE(admission.TryRetry(1));
  EXPECT_FALSE(admission.TryRetry(1));
  EXPECT_EQ(AdmissionEvents(trace.BufferedLines(), "retry_exhausted").size(),
            2u);
}

// A read-only TPC-W template, for building QueryInstances by hand.
const QueryTemplate* FirstReadTemplate(const ApplicationSpec& app) {
  for (const QueryTemplate& tmpl : app.templates) {
    if (!tmpl.is_update) return &tmpl;
  }
  return nullptr;
}

TEST(AdmissionSchedulerTest, PickReplicaFallsBackWhenEveryReplicaExcluded) {
  ClusterHarness h;
  h.AddServers(2);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* a = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  Replica* b = h.resources().CreateReplica(h.resources().servers()[1].get(),
                                           8192, 2);
  tpcw->AddReplica(a);
  tpcw->AddReplica(b);
  AdmissionConfig config;
  config.breaker_failure_threshold = 1;
  AdmissionController* admission = h.EnableAdmission(config);

  QueryInstance q;
  q.app = tpcw->app().id;
  q.tmpl = FirstReadTemplate(tpcw->app());
  ASSERT_NE(q.tmpl, nullptr);

  // One timed-out completion per replica trips both breakers for the
  // class: the routing filter now excludes every candidate.
  admission->OnComplete(q.class_key(), a->id(), 100.0);
  admission->OnComplete(q.class_key(), b->id(), 100.0);
  EXPECT_FALSE(admission->RouteAllowed(q.class_key(), a->id()));
  EXPECT_FALSE(admission->RouteAllowed(q.class_key(), b->id()));

  // Degraded routing beats no routing: the scheduler falls back to the
  // unfiltered least-loaded choice and records that it had to.
  Replica* picked = tpcw->PickReplica(q);
  ASSERT_NE(picked, nullptr);
  EXPECT_TRUE(picked == a || picked == b);
  EXPECT_EQ(h.metrics().counter("admission.no_replica_available")->value(),
            1u);
  tpcw->PickReplica(q);
  EXPECT_EQ(h.metrics().counter("admission.no_replica_available")->value(),
            2u);
}

struct OverloadOutcome {
  uint64_t sla_ok = 0;     // completions inside the SLA (goodput)
  uint64_t completed = 0;
  uint64_t shed = 0;
  bool class_within_sla = false;  // any busy class with avg <= SLA
};

// One server, one replica, 3x its saturation client population (one
// replica saturates near 300 closed-loop clients at TPC-W's 1s think
// time) — the fglb_sim overload scenario's shape.
OverloadOutcome RunOverload(bool admission_on, double duration) {
  SelectiveRetuner::Config config;
  config.enable_actions = false;  // frozen topology: admission only
  ClusterHarness h(config, /*observability=*/false);
  h.AddServers(1);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  if (admission_on) h.EnableAdmission();
  h.AddConstantClients(tpcw, 900, /*seed=*/31);
  h.Start();
  h.RunFor(duration);

  OverloadOutcome out;
  out.sla_ok = tpcw->total_sla_ok();
  out.completed = tpcw->total_completed();
  out.shed = tpcw->total_shed();
  const double sla = tpcw->app().sla_latency_seconds;
  for (const auto& [cls, stats] : tpcw->class_stats()) {
    if (stats.completed >= 50 &&
        stats.latency_sum / static_cast<double>(stats.completed) <= sla) {
      out.class_within_sla = true;
    }
  }
  return out;
}

TEST(AdmissionOverloadTest, ThreeTimesOverloadKeepsAClassInSlaAndGoodputUp) {
  const OverloadOutcome off = RunOverload(false, 300);
  const OverloadOutcome on = RunOverload(true, 300);

  // The unprotected run is genuinely drowning, or the comparison is
  // meaningless.
  ASSERT_GT(off.completed, 0u);
  EXPECT_LT(off.sla_ok, off.completed / 2);

  // Admission control sheds instead of queueing without bound...
  EXPECT_GT(on.shed, 0u);
  // ...which keeps at least one class meeting its SLA on average and
  // buys strictly more within-SLA completions overall.
  EXPECT_TRUE(on.class_within_sla);
  EXPECT_GT(on.sla_ok, off.sla_ok);
}

TEST(AdmissionOverloadTest, SustainedSheddingEscalatesToProvisioning) {
  ClusterHarness h;  // actions enabled
  h.AddServers(2);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.EnableAdmission();
  h.AddConstantClients(tpcw, 900, /*seed=*/33);
  h.Start();
  h.RunFor(120);

  // The retuner reads the shed share off the interval report and goes
  // straight to capacity: no point diagnosing cache interference when
  // the cluster is refusing a quarter of its offered load.
  bool escalated = false;
  for (const auto& action : h.retuner().actions()) {
    if (action.kind == SelectiveRetuner::ActionKind::kCpuProvision &&
        action.description.rfind("overload:", 0) == 0) {
      escalated = true;
    }
  }
  EXPECT_TRUE(escalated);
  EXPECT_GE(tpcw->replicas().size(), 2u);
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// phase=admission projection of a buffered trace with the wall-clock
// header stripped: the byte-identity contract for replayed admission
// decisions (seq stays — admission events must interleave identically
// with every other phase).
std::vector<std::string> AdmissionProjection(
    const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  for (const std::string& line : lines) {
    JsonValue event = MustParse(line);
    if (event.StringOr("phase", "") != "admission") continue;
    event.object.erase("mono_us");
    out.push_back(event.Dump());
  }
  return out;
}

TEST(AdmissionReplayTest, OverloadCaptureReplaysAdmissionTraceByteIdentical) {
  const std::string path = TempPath("fglb_admission_overload.fglbcap");
  const double duration = 240;
  const uint64_t seed = 31;

  std::vector<std::string> live_admission;
  uint64_t live_shed = 0;
  {
    ClusterHarness harness;
    harness.trace().EnableBuffering();
    harness.AddServers(2);
    Scheduler* tpcw = harness.AddApplication(MakeTpcw());
    Replica* r = harness.resources().CreateReplica(
        harness.resources().servers()[0].get(), 8192);
    tpcw->AddReplica(r);
    AdmissionController* admission = harness.EnableAdmission();

    CaptureWriter writer(&harness.sim());
    CaptureInfo info;
    info.seed = seed;
    info.fault_seed = 1;
    info.scenario = "overload";
    info.duration_seconds = duration;
    info.interval_seconds = harness.retuner().config().interval_seconds;
    info.mrc_sample_rate = harness.retuner().config().mrc.sample_rate;
    info.admission_spec = admission->config().ToString();
    std::string error;
    ASSERT_TRUE(writer.Open(path, info, SnapshotTopology(harness), &error))
        << error;
    harness.AddConstantClients(tpcw, 900, seed);
    harness.AttachRecorders(&writer, &writer);
    harness.Start();
    harness.RunFor(duration);
    ASSERT_TRUE(writer.Finalize(harness.retuner().actions(),
                                harness.retuner().samples()));
    live_admission = AdmissionProjection(harness.trace().BufferedLines());
    live_shed = tpcw->total_shed();
  }
  // The live run must actually shed and trace, or byte-equality of
  // empty projections would prove nothing.
  ASSERT_GT(live_shed, 0u);
  ASSERT_FALSE(live_admission.empty());

  Capture capture;
  std::string error;
  ASSERT_TRUE(ReadCapture(path, &capture, &error)) << error;
  EXPECT_FALSE(capture.info.admission_spec.empty());
  ReplayRunner runner(&capture, ReplayBuildOptions{});
  ASSERT_TRUE(runner.Build(&error)) << error;
  ASSERT_NE(runner.harness()->admission(), nullptr);
  runner.harness()->trace().EnableBuffering();
  ASSERT_TRUE(runner.Run(&error)) << error;
  EXPECT_EQ(runner.source()->misses(), 0u);

  const std::vector<std::string> replayed =
      AdmissionProjection(runner.harness()->trace().BufferedLines());
  ASSERT_EQ(replayed.size(), live_admission.size());
  for (size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i], live_admission[i]) << "admission event " << i;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fglb
