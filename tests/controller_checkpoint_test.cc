#include "core/controller_checkpoint.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "cluster/stats_channel.h"
#include "common/varint.h"
#include "scenarios/harness.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

// A consolidation cluster with enough churn that the controller has
// real control state to checkpoint: streaks, stable baselines, feeds.
struct Fixture {
  Fixture() {
    SelectiveRetuner::Config config;
    config.max_migrations_per_interval = 2;
    harness = std::make_unique<ClusterHarness>(config);
    harness->EnableStatsChannel();
    harness->AddServers(3);
    Scheduler* tpcw = harness->AddApplication(MakeTpcw());
    RubisOptions rubis_options;
    rubis_options.app_id = 2;
    Scheduler* rubis = harness->AddApplication(MakeRubis(rubis_options));
    Replica* shared = harness->resources().CreateReplica(
        harness->resources().servers()[0].get(), 8192);
    Replica* spare = harness->resources().CreateReplica(
        harness->resources().servers()[1].get(), 8192, /*engine_seed=*/2);
    tpcw->AddReplica(shared);
    tpcw->AddReplica(spare);
    rubis->AddReplica(shared);
    harness->AddConstantClients(tpcw, 120, /*seed=*/7);
    harness->AddConstantClients(rubis, 40, /*seed=*/8);
    harness->Start();
    harness->RunFor(150);
  }

  std::string BuildBlob() {
    std::string blob;
    ControllerCheckpoint::Build(harness->sim().Now(), harness->retuner(),
                                harness->stats_channel(),
                                harness->admission(), &blob);
    return blob;
  }

  // Bit-exact projections of the control plane, for before/after diffs.
  std::string RetunerState() const {
    std::string s;
    harness->retuner().SerializeControlState(&s);
    return s;
  }
  std::string ChannelState() const {
    std::string s;
    harness->stats_channel()->SerializeReceiverState(&s);
    return s;
  }

  void WipeControlPlane() {
    harness->retuner().ResetControlState();
    harness->stats_channel()->ResetReceiverState();
  }

  std::unique_ptr<ClusterHarness> harness;
};

// Strips the trailing CRC, applies `mutate` to the body, and re-seals.
std::string Reseal(std::string blob,
                   const std::function<void(std::string*)>& mutate) {
  blob.resize(blob.size() - 4);
  mutate(&blob);
  PutFixed32(&blob, Crc32(blob.data(), blob.size()));
  return blob;
}

TEST(ControllerCheckpointTest, RestoreIsBitExact) {
  Fixture f;
  const std::string retuner_before = f.RetunerState();
  const std::string channel_before = f.ChannelState();
  ASSERT_FALSE(retuner_before.empty());
  const std::string blob = f.BuildBlob();

  f.WipeControlPlane();
  EXPECT_NE(f.RetunerState(), retuner_before);

  const auto result = ControllerCheckpoint::Restore(
      blob, &f.harness->retuner(), f.harness->stats_channel(), nullptr);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_DOUBLE_EQ(result.taken_at, f.harness->sim().Now());
  EXPECT_EQ(f.RetunerState(), retuner_before);
  EXPECT_EQ(f.ChannelState(), channel_before);
}

TEST(ControllerCheckpointTest, UnknownTrailingSectionsRestoreCleanly) {
  // Forward compatibility: a blob written by a future controller with
  // extra sections must restore on this one, ignoring what it doesn't
  // know.
  Fixture f;
  const std::string retuner_before = f.RetunerState();
  const std::string blob = Reseal(f.BuildBlob(), [](std::string* body) {
    const std::string payload = "from-the-future";
    PutVarint64(body, 99);  // a tag this reader has never heard of
    PutVarint64(body, payload.size());
    body->append(payload);
  });

  f.WipeControlPlane();
  const auto result = ControllerCheckpoint::Restore(
      blob, &f.harness->retuner(), f.harness->stats_channel(), nullptr);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(f.RetunerState(), retuner_before);
}

TEST(ControllerCheckpointTest, TruncatedBlobIsRejectedAndLeavesColdState) {
  Fixture f;
  const std::string blob = f.BuildBlob();
  for (const size_t keep :
       {blob.size() - 1, blob.size() - 5, blob.size() / 2, size_t{4}}) {
    const auto result = ControllerCheckpoint::Restore(
        blob.substr(0, keep), &f.harness->retuner(),
        f.harness->stats_channel(), nullptr);
    EXPECT_FALSE(result.ok) << "kept " << keep;
    EXPECT_FALSE(result.error.empty());
  }
  // The failed restores left the control plane reset, not half-loaded:
  // bit-exact empty-state serialization on both subsystems.
  f.WipeControlPlane();
  const std::string cold_retuner = f.RetunerState();
  const std::string cold_channel = f.ChannelState();
  ControllerCheckpoint::Restore(blob.substr(0, blob.size() / 2),
                                &f.harness->retuner(),
                                f.harness->stats_channel(), nullptr);
  EXPECT_EQ(f.RetunerState(), cold_retuner);
  EXPECT_EQ(f.ChannelState(), cold_channel);
}

TEST(ControllerCheckpointTest, CrcCorruptionIsRejected) {
  Fixture f;
  std::string blob = f.BuildBlob();
  blob[blob.size() / 2] ^= 0x01;  // one flipped bit anywhere
  const auto result = ControllerCheckpoint::Restore(
      blob, &f.harness->retuner(), f.harness->stats_channel(), nullptr);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("crc"), std::string::npos) << result.error;
}

TEST(ControllerCheckpointTest, BadMagicIsRejected) {
  Fixture f;
  std::string blob = f.BuildBlob();
  blob[0] = 'X';
  const auto result = ControllerCheckpoint::Restore(
      blob, &f.harness->retuner(), f.harness->stats_channel(), nullptr);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("magic"), std::string::npos) << result.error;
  EXPECT_FALSE(
      ControllerCheckpoint::Restore("", &f.harness->retuner(), nullptr,
                                    nullptr)
          .ok);
}

TEST(ControllerCheckpointTest, SectionLengthPastCrcIsRejected) {
  // A section claiming more payload than the blob holds must be caught
  // by the bounds check, not read into the CRC tail or past the end.
  Fixture f;
  const std::string blob = Reseal(f.BuildBlob(), [](std::string* body) {
    PutVarint64(body, 98);
    PutVarint64(body, 1u << 20);  // 1 MiB payload that isn't there
  });
  const auto result = ControllerCheckpoint::Restore(
      blob, &f.harness->retuner(), f.harness->stats_channel(), nullptr);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

}  // namespace
}  // namespace fglb
