#include "cluster/stats_channel.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.h"

namespace fglb {
namespace {

StatsChannel::Snapshot MakeSnapshot(double base) {
  StatsChannel::Snapshot snapshot;
  for (uint32_t cls = 1; cls <= 3; ++cls) {
    MetricVector v{};
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] = base + static_cast<double>(cls * 10 + i) / 7.0;
    }
    snapshot[MakeClassKey(1, cls)] = v;
  }
  return snapshot;
}

// --- config spec codec ---

TEST(StatsChannelConfigTest, DefaultsEncodeEmptyAndRoundTrip) {
  StatsChannelConfig config;
  EXPECT_EQ(config.ToString(), "");
  StatsChannelConfig parsed;
  std::string error;
  ASSERT_TRUE(StatsChannelConfig::Parse("", &parsed, &error)) << error;
  EXPECT_TRUE(parsed.guard);

  config.guard = false;
  config.decay = 0.25;
  config.recover = 0.5;
  config.act_threshold = 0.75;
  const std::string text = config.ToString();
  ASSERT_TRUE(StatsChannelConfig::Parse(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.ToString(), text);
  EXPECT_FALSE(parsed.guard);
  EXPECT_DOUBLE_EQ(parsed.decay, 0.25);
  EXPECT_DOUBLE_EQ(parsed.recover, 0.5);
  EXPECT_DOUBLE_EQ(parsed.act_threshold, 0.75);

  EXPECT_FALSE(StatsChannelConfig::Parse("bogus=1", &parsed, &error));
  EXPECT_FALSE(error.empty());
}

// --- lossless transport: the healthy path is a bit-exact handoff ---

TEST(StatsChannelTest, LosslessDeliveryIsBitExactAndFresh) {
  Simulator sim;
  StatsChannel channel(&sim, {});
  const StatsChannel::Snapshot sent = MakeSnapshot(3.14159);
  channel.Publish(7, sent, 10);
  const StatsChannel::Feed feed = channel.Collect(7);
  EXPECT_TRUE(feed.fresh);
  EXPECT_EQ(feed.stale_intervals, 0u);
  EXPECT_DOUBLE_EQ(feed.confidence, 1.0);
  EXPECT_EQ(feed.last_seq, 1u);
  ASSERT_NE(feed.snapshot, nullptr);
  EXPECT_EQ(*feed.snapshot, sent);  // IEEE-754 bit equality per double
}

TEST(StatsChannelTest, CollectWithoutReplicaHistoryIsStale) {
  Simulator sim;
  StatsChannel channel(&sim, {});
  const StatsChannel::Feed feed = channel.Collect(3);
  EXPECT_FALSE(feed.fresh);
  EXPECT_EQ(feed.stale_intervals, 1u);
  ASSERT_NE(feed.snapshot, nullptr);
  EXPECT_TRUE(feed.snapshot->empty());
}

// --- faulty transport: drops, corruption, duplication, reordering ---

TEST(StatsChannelTest, DroppedReportsDecayConfidenceAndResyncRecovers) {
  Simulator sim;
  StatsChannel channel(&sim, {});
  bool drop = false;
  channel.set_net_hook([&drop](int, uint64_t) {
    FaultInjector::NetDecision d;
    d.drop = drop;
    return d;
  });
  channel.Publish(1, MakeSnapshot(1.0), 10);
  EXPECT_TRUE(channel.Collect(1).fresh);

  drop = true;
  double last_confidence = 1.0;
  for (uint64_t i = 1; i <= 3; ++i) {
    channel.Publish(1, MakeSnapshot(1.0 + static_cast<double>(i)), 10);
    const StatsChannel::Feed feed = channel.Collect(1);
    EXPECT_FALSE(feed.fresh);
    EXPECT_EQ(feed.stale_intervals, i);
    EXPECT_LT(feed.confidence, last_confidence);
    last_confidence = feed.confidence;
    // Fallback serves the last-known-good snapshot, not garbage.
    EXPECT_EQ(*feed.snapshot, MakeSnapshot(1.0));
    EXPECT_FALSE(channel.ConfidentToAct(feed.confidence));
  }

  drop = false;
  channel.Publish(1, MakeSnapshot(9.0), 10);
  const StatsChannel::Feed feed = channel.Collect(1);
  EXPECT_TRUE(feed.fresh);
  EXPECT_EQ(feed.stale_intervals, 0u);
  EXPECT_EQ(*feed.snapshot, MakeSnapshot(9.0));
  EXPECT_GT(feed.confidence, last_confidence);
}

TEST(StatsChannelTest, CorruptReportsAreRejectedByCrc) {
  Simulator sim;
  StatsChannel channel(&sim, {});
  channel.Publish(1, MakeSnapshot(1.0), 10);
  EXPECT_TRUE(channel.Collect(1).fresh);
  channel.set_net_hook([](int, uint64_t) {
    FaultInjector::NetDecision d;
    d.corrupt = true;
    return d;
  });
  channel.Publish(1, MakeSnapshot(2.0), 10);
  const StatsChannel::Feed feed = channel.Collect(1);
  EXPECT_FALSE(feed.fresh);  // the mangled report never reached the feed
  EXPECT_EQ(*feed.snapshot, MakeSnapshot(1.0));
}

TEST(StatsChannelTest, DuplicatesAndStaleSeqsAreIgnored) {
  Simulator sim;
  StatsChannel channel(&sim, {});
  channel.set_net_hook([](int, uint64_t) {
    FaultInjector::NetDecision d;
    d.duplicate = true;
    return d;
  });
  channel.Publish(1, MakeSnapshot(5.0), 10);
  StatsChannel::Feed feed = channel.Collect(1);
  EXPECT_TRUE(feed.fresh);
  EXPECT_EQ(feed.last_seq, 1u);
  // The duplicate copy must not register as a second fresh report.
  feed = channel.Collect(1);
  EXPECT_FALSE(feed.fresh);
}

TEST(StatsChannelTest, ReorderedReportLosesToItsSuccessor) {
  Simulator sim;
  StatsChannel channel(&sim, {});
  bool reorder = true;
  channel.set_net_hook([&reorder](int, uint64_t) {
    FaultInjector::NetDecision d;
    d.reorder = reorder;
    return d;
  });
  // seq 1 is pushed 1.5 intervals out; seq 2 arrives on time and wins.
  channel.Publish(1, MakeSnapshot(1.0), 10);
  reorder = false;
  sim.ScheduleAfter(10, [&channel] {
    channel.Publish(1, MakeSnapshot(2.0), 10);
  });
  sim.RunUntil(30);  // both copies are in by now
  const StatsChannel::Feed feed = channel.Collect(1);
  EXPECT_TRUE(feed.fresh);
  EXPECT_EQ(feed.last_seq, 2u);
  EXPECT_EQ(*feed.snapshot, MakeSnapshot(2.0));
}

// --- the guard: fence widening, act threshold, flap damping ---

TEST(StatsChannelTest, FenceScaleWidensAsConfidenceDecaysAndIsCapped) {
  Simulator sim;
  StatsChannel channel(&sim, {});
  EXPECT_DOUBLE_EQ(channel.FenceScale(1.0), 1.0);
  EXPECT_GT(channel.FenceScale(0.5), channel.FenceScale(0.9));
  EXPECT_LE(channel.FenceScale(1e-9), 8.0);  // long outage, finite fences
}

TEST(StatsChannelTest, GuardOffPinsFullConfidence) {
  Simulator sim;
  StatsChannelConfig config;
  config.guard = false;
  StatsChannel channel(&sim, config);
  channel.set_net_hook([](int, uint64_t) {
    FaultInjector::NetDecision d;
    d.drop = true;
    return d;
  });
  channel.Publish(1, MakeSnapshot(1.0), 10);
  const StatsChannel::Feed feed = channel.Collect(1);
  EXPECT_FALSE(feed.fresh);
  EXPECT_DOUBLE_EQ(feed.confidence, 1.0);  // the flapping ablation arm
  EXPECT_TRUE(channel.ConfidentToAct(feed.confidence));
}

TEST(StatsChannelTest, AlternatingLossNeverClearsActThreshold) {
  // Flap damping: with decay=0.5 / recover=0.25, a link that loses
  // every other report oscillates confidence strictly below the 0.9
  // act threshold, so actions cannot ping-pong with the link state.
  Simulator sim;
  StatsChannel channel(&sim, {});
  bool drop = false;
  channel.set_net_hook([&drop](int, uint64_t) {
    FaultInjector::NetDecision d;
    d.drop = drop;
    return d;
  });
  channel.Publish(1, MakeSnapshot(0.0), 10);
  EXPECT_TRUE(channel.Collect(1).fresh);
  for (int i = 0; i < 20; ++i) {
    drop = !drop;
    channel.Publish(1, MakeSnapshot(static_cast<double>(i)), 10);
    const StatsChannel::Feed feed = channel.Collect(1);
    if (i > 0) {  // after the first loss the flap regime is reached
      EXPECT_FALSE(channel.ConfidentToAct(feed.confidence)) << i;
    }
  }
}

// --- lifecycle: retention and checkpoint round-trip ---

TEST(StatsChannelTest, RetainDropsDeadReplicas) {
  Simulator sim;
  StatsChannel channel(&sim, {});
  channel.Publish(1, MakeSnapshot(1.0), 10);
  channel.Publish(2, MakeSnapshot(2.0), 10);
  channel.Collect(1);
  channel.Collect(2);
  channel.Retain({2});
  // Replica 1's receiver state is gone: a fresh Collect starts over.
  EXPECT_TRUE(channel.Collect(1).snapshot->empty());
  EXPECT_EQ(*channel.Collect(2).snapshot, MakeSnapshot(2.0));
}

TEST(StatsChannelTest, ReceiverStateRoundTripsThroughSerialize) {
  Simulator sim;
  StatsChannel channel(&sim, {});
  bool drop = false;
  channel.set_net_hook([&drop](int, uint64_t) {
    FaultInjector::NetDecision d;
    d.drop = drop;
    return d;
  });
  channel.Publish(1, MakeSnapshot(4.0), 10);
  channel.Collect(1);
  drop = true;
  channel.Publish(1, MakeSnapshot(5.0), 10);
  const StatsChannel::Feed before = channel.Collect(1);
  EXPECT_FALSE(before.fresh);

  std::string blob;
  channel.SerializeReceiverState(&blob);
  channel.ResetReceiverState();
  EXPECT_TRUE(channel.Collect(1).snapshot->empty());

  // Restoring resumes the exact staleness episode: same last-known-good
  // snapshot, same confidence, and the next miss continues the count.
  const uint8_t* p = reinterpret_cast<const uint8_t*>(blob.data());
  ASSERT_TRUE(channel.RestoreReceiverState(p, p + blob.size()));
  channel.Publish(1, MakeSnapshot(6.0), 10);  // dropped
  const StatsChannel::Feed after = channel.Collect(1);
  EXPECT_FALSE(after.fresh);
  EXPECT_EQ(after.stale_intervals, before.stale_intervals + 1);
  EXPECT_EQ(*after.snapshot, MakeSnapshot(4.0));

  // Truncated blobs are rejected, not half-applied.
  StatsChannel other(&sim, {});
  ASSERT_GT(blob.size(), 4u);
  EXPECT_FALSE(other.RestoreReceiverState(p, p + blob.size() - 3));
}

TEST(StatsChannelTest, PublisherSequencesSurviveReceiverReset) {
  // Publisher seq is data-plane state: a ctl crash wipes the receiver
  // but the next report still carries the next sequence number, so a
  // restored controller cannot mistake a replayed-looking report for a
  // fresh one.
  Simulator sim;
  StatsChannel channel(&sim, {});
  channel.Publish(1, MakeSnapshot(1.0), 10);
  channel.Collect(1);
  channel.ResetReceiverState();
  channel.Publish(1, MakeSnapshot(2.0), 10);
  const StatsChannel::Feed feed = channel.Collect(1);
  EXPECT_TRUE(feed.fresh);
  EXPECT_EQ(feed.last_seq, 2u);
}

}  // namespace
}  // namespace fglb
