#include "cluster/scheduler.h"

#include <gtest/gtest.h>

#include "cluster/physical_server.h"
#include "cluster/replica.h"
#include "cluster/resource_manager.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : resources_(&sim_), app_(MakeTpcw()) {}

  Replica* NewReplica(uint64_t pool_pages = 2048) {
    PhysicalServer* server = resources_.AddServer({});
    return resources_.CreateReplica(server, pool_pages);
  }

  QueryInstance Query(QueryClassId cls) {
    QueryInstance q;
    q.app = app_.id;
    q.tmpl = app_.FindTemplate(cls);
    q.submit_time = sim_.Now();
    return q;
  }

  Simulator sim_;
  ResourceManager resources_;
  ApplicationSpec app_;
};

TEST_F(ClusterTest, ReplicaRunsQueryEndToEnd) {
  Replica* r = NewReplica();
  double latency = -1;
  r->Run(Query(kTpcwHome), [&](double l, const ExecutionCounters&) {
    latency = l;
  });
  EXPECT_EQ(r->inflight(), 1u);
  sim_.RunToCompletion();
  EXPECT_GT(latency, 0.0);
  EXPECT_EQ(r->inflight(), 0u);
  EXPECT_EQ(r->completed(), 1u);
}

TEST_F(ClusterTest, QueueingInflatesLatency) {
  Replica* r = NewReplica();
  std::vector<double> latencies;
  for (int i = 0; i < 200; ++i) {
    r->Run(Query(kTpcwSearchByTitle),
           [&](double l, const ExecutionCounters&) {
             latencies.push_back(l);
           });
  }
  sim_.RunToCompletion();
  ASSERT_EQ(latencies.size(), 200u);
  // Later completions waited behind earlier ones.
  EXPECT_GT(latencies.back(), latencies.front());
}

TEST_F(ClusterTest, SchedulerBalancesReadsAcrossReplicas) {
  Scheduler scheduler(&sim_, &app_);
  Replica* a = NewReplica();
  Replica* b = NewReplica();
  scheduler.AddReplica(a);
  scheduler.AddReplica(b);
  for (int i = 0; i < 100; ++i) {
    scheduler.Submit(Query(kTpcwHome), nullptr);
    sim_.RunUntil(sim_.Now() + 0.5);
  }
  sim_.RunToCompletion();
  EXPECT_GT(a->completed(), 20u);
  EXPECT_GT(b->completed(), 20u);
}

TEST_F(ClusterTest, WritesGoToAllReplicas) {
  Scheduler scheduler(&sim_, &app_);
  Replica* a = NewReplica();
  Replica* b = NewReplica();
  scheduler.AddReplica(a);
  scheduler.AddReplica(b);
  scheduler.Submit(Query(kTpcwBuyConfirm), nullptr);
  sim_.RunToCompletion();
  EXPECT_EQ(a->completed(), 1u);
  EXPECT_EQ(b->completed(), 1u);
  EXPECT_EQ(a->AppliedSeq(app_.id), 1u);
  EXPECT_EQ(b->AppliedSeq(app_.id), 1u);
}

TEST_F(ClusterTest, DedicatedPlacementPinsClass) {
  Scheduler scheduler(&sim_, &app_);
  Replica* a = NewReplica();
  Replica* b = NewReplica();
  scheduler.AddReplica(a);
  scheduler.AddReplica(b);
  scheduler.DedicateReplica(kTpcwBestSeller, b);

  // BestSeller goes only to b; Home (default) only to a now that b is
  // a dedicated target.
  const auto placement = scheduler.PlacementOf(kTpcwBestSeller);
  ASSERT_EQ(placement.size(), 1u);
  EXPECT_EQ(placement[0], b);
  const auto default_placement = scheduler.PlacementOf(kTpcwHome);
  ASSERT_EQ(default_placement.size(), 1u);
  EXPECT_EQ(default_placement[0], a);

  for (int i = 0; i < 20; ++i) {
    scheduler.Submit(Query(kTpcwBestSeller), nullptr);
    scheduler.Submit(Query(kTpcwHome), nullptr);
  }
  sim_.RunToCompletion();
  // All BestSellers on b; writes aside, Home stayed on a.
  EXPECT_EQ(a->completed() + b->completed(), 40u);
  EXPECT_EQ(b->completed(), 20u);
}

TEST_F(ClusterTest, ClearDedicationRestoresDefault) {
  Scheduler scheduler(&sim_, &app_);
  Replica* a = NewReplica();
  Replica* b = NewReplica();
  scheduler.AddReplica(a);
  scheduler.AddReplica(b);
  scheduler.DedicateReplica(kTpcwBestSeller, b);
  scheduler.ClearDedication(kTpcwBestSeller);
  // b remains out of the default set until re-added.
  EXPECT_EQ(scheduler.PlacementOf(kTpcwBestSeller).size(), 1u);
  scheduler.AddReplica(b, /*in_default_set=*/true);
  EXPECT_EQ(scheduler.PlacementOf(kTpcwBestSeller).size(), 2u);
}

TEST_F(ClusterTest, IntervalReportPercentilesOrdered) {
  Scheduler scheduler(&sim_, &app_);
  Replica* r = NewReplica();
  scheduler.AddReplica(r);
  for (int i = 0; i < 300; ++i) {
    scheduler.Submit(Query(kTpcwSearchByTitle), nullptr);
    sim_.RunUntil(sim_.Now() + 0.2);
  }
  sim_.RunToCompletion();
  const auto report = scheduler.EndInterval(60.0);
  ASSERT_GT(report.queries, 0u);
  EXPECT_LE(report.p95_latency, report.p99_latency + 1e-9);
  EXPECT_GT(report.p95_latency, 0.0);
}

TEST_F(ClusterTest, IntervalReportTracksSla) {
  Scheduler scheduler(&sim_, &app_);
  Replica* r = NewReplica();
  scheduler.AddReplica(r);
  scheduler.Submit(Query(kTpcwHome), nullptr);
  sim_.RunToCompletion();
  const auto report = scheduler.EndInterval(10.0);
  EXPECT_EQ(report.queries, 1u);
  EXPECT_TRUE(report.sla_met);
  EXPECT_GT(report.avg_latency, 0.0);
  // Interval resets.
  const auto empty = scheduler.EndInterval(10.0);
  EXPECT_EQ(empty.queries, 0u);
  EXPECT_TRUE(empty.sla_met);
}

TEST_F(ClusterTest, NoReplicasPenalizedNotCrashed) {
  Scheduler scheduler(&sim_, &app_);
  double latency = 0;
  scheduler.Submit(Query(kTpcwHome), [&](double l) { latency = l; });
  sim_.RunToCompletion();
  EXPECT_GT(latency, app_.sla_latency_seconds);
  const auto report = scheduler.EndInterval(10.0);
  EXPECT_FALSE(report.sla_met);
}

TEST_F(ClusterTest, ResourceManagerMemoryAccounting) {
  PhysicalServer::Options options;
  options.memory_pages = 4096;
  PhysicalServer* server = resources_.AddServer(options);
  EXPECT_EQ(resources_.FreeMemoryPages(server), 4096u);
  Replica* r1 = resources_.CreateReplica(server, 3000);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(resources_.FreeMemoryPages(server), 1096u);
  // Does not fit.
  EXPECT_EQ(resources_.CreateReplica(server, 2000), nullptr);
  Replica* r2 = resources_.CreateReplica(server, 1000);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(resources_.ReplicasOn(server).size(), 2u);
}

TEST_F(ClusterTest, ProvisionPrefersUnusedServers) {
  PhysicalServer* s1 = resources_.AddServer({});
  resources_.AddServer({});
  Scheduler scheduler(&sim_, &app_);
  Replica* first = resources_.CreateReplica(s1, 1024);
  scheduler.AddReplica(first);
  Replica* second = resources_.ProvisionReplica(&scheduler, 1024);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(&second->server(), s1);
  EXPECT_EQ(resources_.ServersUsedBy(scheduler), 2);
  // Pool exhausted for a third (both servers host the app now).
  EXPECT_EQ(resources_.ProvisionReplica(&scheduler, 1024), nullptr);
}

TEST_F(ClusterTest, DecommissionRemovesFromScheduler) {
  Scheduler scheduler(&sim_, &app_);
  Replica* a = NewReplica();
  Replica* b = NewReplica();
  scheduler.AddReplica(a);
  scheduler.AddReplica(b);
  resources_.Decommission(&scheduler, b);
  EXPECT_EQ(scheduler.replicas().size(), 1u);
  EXPECT_EQ(resources_.AllReplicas().size(), 1u);
}

TEST_F(ClusterTest, SharedEngineServesTwoApps) {
  // Consolidation: TPC-W and RUBiS submitted to the same replica.
  const ApplicationSpec rubis = MakeRubis();
  Replica* shared = NewReplica(8192);
  Scheduler tpcw_sched(&sim_, &app_);
  Scheduler rubis_sched(&sim_, &rubis);
  tpcw_sched.AddReplica(shared);
  rubis_sched.AddReplica(shared);

  QueryInstance rq;
  rq.app = rubis.id;
  rq.tmpl = rubis.FindTemplate(kRubisViewItem);
  tpcw_sched.Submit(Query(kTpcwHome), nullptr);
  rubis_sched.Submit(rq, nullptr);
  sim_.RunToCompletion();
  EXPECT_EQ(shared->completed(), 2u);
  // Both apps' classes tracked in the one engine.
  const auto classes = shared->engine().stats().KnownClasses();
  bool saw_tpcw = false, saw_rubis = false;
  for (ClassKey key : classes) {
    saw_tpcw |= AppOf(key) == app_.id;
    saw_rubis |= AppOf(key) == rubis.id;
  }
  EXPECT_TRUE(saw_tpcw);
  EXPECT_TRUE(saw_rubis);
}

}  // namespace
}  // namespace fglb
