#include "scenarios/report.h"

#include <gtest/gtest.h>

#include "common/csv.h"
#include "scenarios/cli_options.h"

namespace fglb {
namespace {

std::vector<SelectiveRetuner::IntervalSample> SampleSeries() {
  std::vector<SelectiveRetuner::IntervalSample> samples;
  for (int i = 1; i <= 3; ++i) {
    SelectiveRetuner::IntervalSample s;
    s.time = 10.0 * i;
    SelectiveRetuner::AppSample app;
    app.app = 1;
    app.queries = 100u * static_cast<unsigned>(i);
    app.avg_latency = 0.1 * i;
    app.p95_latency = 0.2 * i;
    app.throughput = 10.0 * i;
    app.sla_met = i != 2;
    app.servers_used = i;
    s.apps.push_back(app);
    SelectiveRetuner::ServerSample server;
    server.server_id = 0;
    server.cpu_utilization = 0.25 * i;
    server.io_utilization = 0.1 * i;
    s.servers.push_back(server);
    samples.push_back(s);
  }
  return samples;
}

int CountLines(const std::string& text) {
  int lines = 0;
  for (char c : text) lines += (c == '\n');
  return lines;
}

TEST(ReportTest, SamplesCsvShape) {
  const std::string csv = SamplesCsv(SampleSeries());
  EXPECT_EQ(CountLines(csv), 4);  // header + 3 rows
  EXPECT_EQ(csv.rfind("time_s,app,queries", 0), 0u);
  EXPECT_NE(csv.find("20.0,1,200,"), std::string::npos);
  // The SLA violation row: sla_met=0, servers_used=2.
  EXPECT_NE(csv.find(",0,2\n"), std::string::npos);
}

TEST(ReportTest, ServerUtilizationCsvShape) {
  const std::string csv = ServerUtilizationCsv(SampleSeries());
  EXPECT_EQ(CountLines(csv), 4);
  EXPECT_EQ(csv.rfind("time_s,server,", 0), 0u);
  EXPECT_NE(csv.find("30.0,0,0.7500,0.3000"), std::string::npos);
}

TEST(ReportTest, TableContainsViolationMarker) {
  const std::string table = FormatSamplesTable(SampleSeries());
  EXPECT_NE(table.find("VIO"), std::string::npos);
  EXPECT_NE(table.find("ok"), std::string::npos);
}

TEST(ReportTest, ActionsCsvQuotesDescriptions) {
  std::vector<SelectiveRetuner::Action> actions;
  SelectiveRetuner::Action a;
  a.time = 42;
  a.kind = SelectiveRetuner::ActionKind::kQuotaEnforced;
  a.app = 2;
  a.description = "quota, with \"quotes\" and, commas";
  actions.push_back(a);
  const std::string csv = ActionsCsv(actions);
  EXPECT_NE(csv.find("\"quota, with \"\"quotes\"\" and, commas\""),
            std::string::npos);
  EXPECT_NE(csv.find("quota_enforced"), std::string::npos);
}

TEST(CsvQuoteTest, PlainFieldsPassThroughUnquoted) {
  EXPECT_EQ(CsvQuote("plain"), "plain");
  EXPECT_EQ(CsvQuote(""), "");
  EXPECT_EQ(CsvQuote("semicolons; are fine"), "semicolons; are fine");
}

TEST(CsvQuoteTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvQuote("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvQuote("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvQuote("cr\rhere"), "\"cr\rhere\"");
}

TEST(CsvQuoteTest, EdgeShapes) {
  EXPECT_EQ(CsvQuote("\""), "\"\"\"\"");
  EXPECT_EQ(CsvQuote(","), "\",\"");
  EXPECT_EQ(CsvQuote("trailing,"), "\"trailing,\"");
}

TEST(ReportTest, EmptyInputsGiveHeadersOnly) {
  EXPECT_EQ(CountLines(SamplesCsv({})), 1);
  EXPECT_EQ(CountLines(ActionsCsv({})), 1);
  EXPECT_TRUE(FormatActions({}).empty());
  EXPECT_TRUE(FormatDiagnoses({}).empty());
}

TEST(CliOptionsTest, DefaultsWhenNoArgs) {
  CliOptions options;
  std::string error;
  ASSERT_TRUE(ParseCliOptions({}, &options, &error));
  EXPECT_EQ(options.scenario, CliOptions::Scenario::kSteady);
  EXPECT_EQ(options.output, CliOptions::Output::kTable);
  EXPECT_EQ(options.servers, 4);
}

TEST(CliOptionsTest, ParsesEqualsAndSpaceForms) {
  CliOptions options;
  std::string error;
  ASSERT_TRUE(ParseCliOptions({"--scenario=consolidation", "--servers", "7",
                               "--duration=1200.5", "--seed", "99"},
                              &options, &error))
      << error;
  EXPECT_EQ(options.scenario, CliOptions::Scenario::kConsolidation);
  EXPECT_EQ(options.servers, 7);
  EXPECT_DOUBLE_EQ(options.duration_seconds, 1200.5);
  EXPECT_EQ(options.seed, 99u);
}

TEST(CliOptionsTest, RejectsUnknownOption) {
  CliOptions options;
  std::string error;
  EXPECT_FALSE(ParseCliOptions({"--bogus=1"}, &options, &error));
  EXPECT_NE(error.find("unknown option"), std::string::npos);
}

TEST(CliOptionsTest, RejectsBadValues) {
  CliOptions options;
  std::string error;
  EXPECT_FALSE(ParseCliOptions({"--servers=0"}, &options, &error));
  EXPECT_FALSE(ParseCliOptions({"--servers=two"}, &options, &error));
  EXPECT_FALSE(ParseCliOptions({"--duration=-5"}, &options, &error));
  EXPECT_FALSE(ParseCliOptions({"--scenario=nope"}, &options, &error));
  EXPECT_FALSE(ParseCliOptions({"--output=xml"}, &options, &error));
}

TEST(CliOptionsTest, MissingValueIsAnError) {
  CliOptions options;
  std::string error;
  EXPECT_FALSE(ParseCliOptions({"--servers"}, &options, &error));
  EXPECT_NE(error.find("missing value"), std::string::npos);
}

TEST(CliOptionsTest, HelpFlag) {
  CliOptions options;
  std::string error;
  ASSERT_TRUE(ParseCliOptions({"--help"}, &options, &error));
  EXPECT_TRUE(options.help);
  EXPECT_NE(CliUsage().find("--scenario"), std::string::npos);
}

TEST(CliOptionsTest, PositionalArgumentRejected) {
  CliOptions options;
  std::string error;
  EXPECT_FALSE(ParseCliOptions({"steady"}, &options, &error));
}

TEST(CliOptionsTest, ObservabilityFlags) {
  CliOptions options;
  std::string error;
  ASSERT_TRUE(ParseCliOptions({"--trace-out=t.jsonl", "--metrics-out",
                               "m.json", "--metrics-interval=5",
                               "--log-level=debug"},
                              &options, &error))
      << error;
  EXPECT_EQ(options.trace_out, "t.jsonl");
  EXPECT_EQ(options.metrics_out, "m.json");
  EXPECT_DOUBLE_EQ(options.metrics_interval_seconds, 5);
  EXPECT_EQ(options.log_level, "debug");
}

TEST(CliOptionsTest, ObservabilityDefaultsOff) {
  CliOptions options;
  std::string error;
  ASSERT_TRUE(ParseCliOptions({}, &options, &error));
  EXPECT_TRUE(options.trace_out.empty());
  EXPECT_TRUE(options.metrics_out.empty());
  EXPECT_DOUBLE_EQ(options.metrics_interval_seconds, 0);
  EXPECT_EQ(options.log_level, "info");
}

TEST(CliOptionsTest, RejectsBadObservabilityValues) {
  CliOptions options;
  std::string error;
  EXPECT_FALSE(ParseCliOptions({"--log-level=loud"}, &options, &error));
  EXPECT_FALSE(ParseCliOptions({"--metrics-interval=-1"}, &options, &error));
  EXPECT_FALSE(ParseCliOptions({"--trace-out="}, &options, &error));
}

}  // namespace
}  // namespace fglb
