#include "core/log_analyzer.h"

#include <gtest/gtest.h>

#include "workload/tpcw.h"

namespace fglb {
namespace {

class LogAnalyzerTest : public ::testing::Test {
 protected:
  LogAnalyzerTest() : app_(MakeTpcw()) {
    DatabaseEngine::Options options;
    options.buffer_pool_pages = 4096;
    options.access_window_capacity = 20000;
    options.seed = 3;
    engine_ = std::make_unique<DatabaseEngine>("e", options, &disk_);
    MrcConfig mrc;
    mrc.max_server_pages = 8192;
    analyzer_ = std::make_unique<LogAnalyzer>(engine_.get(), OutlierConfig{},
                                              mrc);
  }

  // Executes `n` instances of `cls`, recording completions with a
  // nominal latency.
  void RunQueries(QueryClassId cls, int n, double latency = 0.1) {
    QueryInstance q;
    q.app = app_.id;
    q.tmpl = app_.FindTemplate(cls);
    for (int i = 0; i < n; ++i) {
      const ExecutionCounters c = engine_->Execute(q);
      engine_->RecordCompletion(q.class_key(), latency, c);
    }
  }

  std::map<ClassKey, MetricVector> Snapshot() {
    return engine_->stats().EndInterval(10.0);
  }

  DiskModel disk_;
  ApplicationSpec app_;
  std::unique_ptr<DatabaseEngine> engine_;
  std::unique_ptr<LogAnalyzer> analyzer_;
};

TEST_F(LogAnalyzerTest, StableIntervalRecordsSignatures) {
  RunQueries(kTpcwHome, 50);
  const auto snap = Snapshot();
  analyzer_->RecordStableInterval(app_.id, snap, 10.0);
  const ClassKey key = MakeClassKey(app_.id, kTpcwHome);
  ASSERT_NE(analyzer_->stable_store().Find(key), nullptr);
}

TEST_F(LogAnalyzerTest, MrcBaselineSeededOnceWindowLargeEnough) {
  const ClassKey key = MakeClassKey(app_.id, kTpcwBestSeller);
  // A handful of queries: window below threshold, no baseline yet.
  RunQueries(kTpcwBestSeller, 3);
  analyzer_->RecordStableInterval(app_.id, Snapshot(), 10.0);
  EXPECT_EQ(analyzer_->StableParamsOf(key), nullptr);
  // Enough accesses accumulate a baseline.
  RunQueries(kTpcwBestSeller, 60);
  analyzer_->RecordStableInterval(app_.id, Snapshot(), 20.0);
  EXPECT_NE(analyzer_->StableParamsOf(key), nullptr);
}

TEST_F(LogAnalyzerTest, OtherAppsClassesIgnoredInDetection) {
  RunQueries(kTpcwHome, 50);
  auto snap = Snapshot();
  // Forge a foreign-app class into the snapshot.
  MetricVector v{};
  At(v, Metric::kBufferMisses) = 1e6;
  snap[MakeClassKey(77, 1)] = v;
  const OutlierReport report = analyzer_->DetectOutliers(app_.id, snap);
  for (const auto& o : report.outliers) {
    EXPECT_EQ(AppOf(o.key), app_.id);
  }
  for (ClassKey key : report.new_classes) {
    EXPECT_EQ(AppOf(key), app_.id);
  }
}

TEST_F(LogAnalyzerTest, DiagnoseInsufficientData) {
  RunQueries(kTpcwHome, 1);
  const auto diag =
      analyzer_->DiagnoseMemory({MakeClassKey(app_.id, kTpcwHome)});
  EXPECT_TRUE(diag.suspects.empty());
  ASSERT_EQ(diag.insufficient_data.size(), 1u);
}

TEST_F(LogAnalyzerTest, DiagnoseNeverSeenClassIsInsufficientData) {
  // An empty access window (class named by a stale candidate list,
  // e.g. after a stats dropout) must not reach the MRC replay.
  const ClassKey ghost = MakeClassKey(app_.id, 999);
  const auto diag = analyzer_->DiagnoseMemory({ghost});
  EXPECT_TRUE(diag.suspects.empty());
  ASSERT_EQ(diag.insufficient_data.size(), 1u);
  EXPECT_EQ(diag.insufficient_data[0], ghost);
}

TEST_F(LogAnalyzerTest, EmptySnapshotIsHarmless) {
  // A drop-all stats dropout yields an empty interval snapshot: stable
  // recording and outlier detection must both be clean no-ops.
  const std::map<ClassKey, MetricVector> empty;
  analyzer_->RecordStableInterval(app_.id, empty, 10.0);
  EXPECT_EQ(analyzer_->stable_store().size(), 0u);
  const OutlierReport report = analyzer_->DetectOutliers(app_.id, empty);
  EXPECT_TRUE(report.outliers.empty());
  EXPECT_TRUE(report.new_classes.empty());
}

TEST_F(LogAnalyzerTest, MixedSufficiencyDiagnosesOnlyTheWellSampled) {
  RunQueries(kTpcwBestSeller, 60);
  RunQueries(kTpcwHome, 1);  // single sample: window below threshold
  const ClassKey rich = MakeClassKey(app_.id, kTpcwBestSeller);
  const ClassKey poor = MakeClassKey(app_.id, kTpcwHome);
  const auto diag = analyzer_->DiagnoseMemory({rich, poor});
  ASSERT_EQ(diag.insufficient_data.size(), 1u);
  EXPECT_EQ(diag.insufficient_data[0], poor);
  ASSERT_EQ(diag.suspects.size(), 1u);
  EXPECT_EQ(diag.suspects[0].key, rich);
}

TEST_F(LogAnalyzerTest, DiagnoseNewClassIsSuspect) {
  RunQueries(kTpcwBestSeller, 60);
  const ClassKey key = MakeClassKey(app_.id, kTpcwBestSeller);
  // No stable baseline was ever recorded -> suspect by definition.
  const auto diag = analyzer_->DiagnoseMemory({key});
  ASSERT_EQ(diag.suspects.size(), 1u);
  EXPECT_EQ(diag.suspects[0].key, key);
  EXPECT_GT(diag.suspects[0].params.acceptable_memory_pages, 0u);
}

TEST_F(LogAnalyzerTest, DiagnoseUnchangedClassCleared) {
  RunQueries(kTpcwBestSeller, 60);
  analyzer_->RecordStableInterval(app_.id, Snapshot(), 10.0);
  const ClassKey key = MakeClassKey(app_.id, kTpcwBestSeller);
  ASSERT_NE(analyzer_->StableParamsOf(key), nullptr);
  // More of the same workload.
  RunQueries(kTpcwBestSeller, 60);
  const auto diag = analyzer_->DiagnoseMemory({key});
  EXPECT_TRUE(diag.suspects.empty());
  ASSERT_EQ(diag.cleared.size(), 1u);
}

TEST_F(LogAnalyzerTest, AdoptRecomputationUpdatesBaseline) {
  RunQueries(kTpcwBestSeller, 60);
  const ClassKey key = MakeClassKey(app_.id, kTpcwBestSeller);
  auto diag = analyzer_->DiagnoseMemory({key});
  ASSERT_EQ(diag.suspects.size(), 1u);
  analyzer_->AdoptRecomputation(key);
  EXPECT_NE(analyzer_->StableParamsOf(key), nullptr);
  // Re-diagnosis with the same pattern is now clear.
  diag = analyzer_->DiagnoseMemory({key});
  EXPECT_TRUE(diag.suspects.empty());
}

TEST_F(LogAnalyzerTest, StableProfilesExceptFilters) {
  RunQueries(kTpcwBestSeller, 60);
  RunQueries(kTpcwProductDetail, 200);
  analyzer_->RecordStableInterval(app_.id, Snapshot(), 10.0);
  const ClassKey bs = MakeClassKey(app_.id, kTpcwBestSeller);
  const auto all = analyzer_->StableProfilesExcept({});
  const auto without = analyzer_->StableProfilesExcept({bs});
  EXPECT_EQ(all.size(), without.size() + 1);
  for (const auto& p : without) EXPECT_NE(p.key, bs);
}

}  // namespace
}  // namespace fglb
