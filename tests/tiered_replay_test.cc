// Tiered capture→replay: a run whose engines carry a second-tier
// cache must replay byte-for-byte — the --phase=action projection
// (demote actions included) and the phase=mrc events with their
// per-tier fields — and the TierConfig must round-trip through the
// FGLBCAP1 info block so the replayed engines rebuild the exact same
// buffer hierarchy before any replica exists.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/trace_check.h"
#include "replay/capture.h"
#include "replay/replayer.h"
#include "scenarios/harness.h"
#include "storage/replacement_policy.h"
#include "storage/tiered_buffer_pool.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Erases every `"key":<number>` field from a JSON line (with whichever
// neighbouring comma keeps the rest well-formed). Used to drop the
// wall-clock fields (mono_us, dur_us) before byte-comparing trace
// lines: everything else in a phase=mrc event derives from simulated
// time and must reproduce exactly.
std::string StripNumberField(std::string line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  for (;;) {
    const size_t at = line.find(needle);
    if (at == std::string::npos) return line;
    size_t end = at + needle.size();
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
    if (end < line.size() && line[end] == ',') {
      ++end;
    } else if (at > 0 && line[at - 1] == ',') {
      line.erase(at - 1, end - at + 1);
      continue;
    }
    line.erase(at, end - at);
  }
}

// The --phase=mrc projection of a buffered trace, wall-clock stripped.
std::vector<std::string> MrcLines(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  for (const std::string& line : lines) {
    if (line.find("\"phase\":\"mrc\"") == std::string::npos) continue;
    out.push_back(
        StripNumberField(StripNumberField(line, "mono_us"), "dur_us"));
  }
  return out;
}

// Mirrors fglb_sim's tier-thrash scenario: the consolidation squeeze
// (TPC-W steady, RUBiS stepping in hard on a shared replica) on
// engines that carry a second tier, so the controller's cheapest
// workable rung is the demote instead of the reschedule. The engine
// defaults must be set before the first replica exists — a pool's
// hierarchy is built in its constructor.
void AssembleTierThrash(ClusterHarness* harness, double duration,
                        uint64_t seed, const TierConfig& tier,
                        ReplacementPolicy replacement) {
  harness->AddServers(4);
  harness->resources().set_engine_defaults(replacement, tier);
  PhysicalServer* first = harness->resources().servers()[0].get();
  Scheduler* tpcw = harness->AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = harness->AddApplication(MakeRubis(rubis_options));
  Replica* shared = harness->resources().CreateReplica(first, 8192);
  tpcw->AddReplica(shared);
  rubis->AddReplica(shared);
  harness->AddConstantClients(tpcw, 120, seed);
  harness->AddClients(
      rubis,
      std::make_unique<StepLoad>(
          std::vector<std::pair<SimTime, double>>{{duration / 3, 60}}),
      seed + 1);
}

TierConfig DefaultTier() {
  TierConfig tier;
  tier.pages = 16384;
  return tier;
}

struct LiveTieredRun {
  std::vector<std::string> action_lines;
  std::vector<std::string> mrc_lines;
  size_t action_count = 0;
};

// Runs a live tiered harness with capture attached, returns its action
// and mrc trace projections, and leaves the capture at `capture_path`.
LiveTieredRun RunLive(const std::string& capture_path,
                      const std::string& fault_spec, uint64_t seed,
                      uint64_t fault_seed, double duration,
                      const TierConfig& tier) {
  ClusterHarness harness;
  harness.trace().EnableBuffering();
  AssembleTierThrash(&harness, duration, seed, tier, ReplacementPolicy::kLru);
  if (!fault_spec.empty()) {
    FaultSpec spec;
    std::string fault_error;
    EXPECT_TRUE(FaultSpec::Parse(fault_spec, &spec, &fault_error))
        << fault_error;
    harness.InjectFaults(std::move(spec), fault_seed);
  }

  CaptureWriter writer(&harness.sim());
  CaptureInfo info;
  info.seed = seed;
  info.fault_seed = fault_seed;
  info.scenario = fault_spec.empty() ? "tier-thrash" : "tier-fail";
  info.fault_spec = fault_spec;
  info.duration_seconds = duration;
  info.interval_seconds = harness.retuner().config().interval_seconds;
  info.mrc_sample_rate = harness.retuner().config().mrc.sample_rate;
  info.max_migrations_per_interval =
      harness.retuner().config().max_migrations_per_interval;
  info.tier_spec = tier.ToString();
  std::string error;
  EXPECT_TRUE(
      writer.Open(capture_path, info, SnapshotTopology(harness), &error))
      << error;
  harness.AttachRecorders(&writer, &writer);
  harness.Start();
  harness.RunFor(duration);
  EXPECT_TRUE(writer.Finalize(harness.retuner().actions(),
                              harness.retuner().samples()));

  LiveTieredRun result;
  result.action_count = harness.retuner().actions().size();
  EXPECT_TRUE(ActionLines(harness.trace().BufferedLines(),
                          &result.action_lines, &error))
      << error;
  result.mrc_lines = MrcLines(harness.trace().BufferedLines());
  return result;
}

// Replays `capture_path` strictly and returns the same projections.
LiveTieredRun RunReplay(const std::string& capture_path) {
  Capture capture;
  std::string error;
  EXPECT_TRUE(ReadCapture(capture_path, &capture, &error)) << error;
  ReplayRunner runner(&capture, ReplayBuildOptions{});
  EXPECT_TRUE(runner.Build(&error)) << error;
  runner.harness()->trace().EnableBuffering();
  EXPECT_TRUE(runner.Run(&error)) << error;
  EXPECT_EQ(runner.source()->misses(), 0u);

  LiveTieredRun result;
  result.action_count = runner.harness()->retuner().actions().size();
  EXPECT_TRUE(ActionLines(runner.harness()->trace().BufferedLines(),
                          &result.action_lines, &error))
      << error;
  result.mrc_lines = MrcLines(runner.harness()->trace().BufferedLines());
  return result;
}

bool AnyContains(const std::vector<std::string>& lines,
                 const std::string& needle) {
  for (const std::string& line : lines) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(TieredReplayTest, TierThrashReplayMatchesLiveActionAndMrcTraces) {
  const std::string path = TempPath("fglb_tiered_replay_thrash.fglbcap");
  const LiveTieredRun live = RunLive(path, "", 1, 1, 450, DefaultTier());
  // The run must take the new rung, or byte-equality proves nothing
  // about it.
  ASSERT_GT(live.action_count, 0u);
  ASSERT_TRUE(AnyContains(live.action_lines, "[demote]"));
  // Tiered engines stamp their tier state on every mrc diagnosis.
  ASSERT_FALSE(live.mrc_lines.empty());
  ASSERT_TRUE(AnyContains(live.mrc_lines, "\"tier2_pages\""));

  const LiveTieredRun replayed = RunReplay(path);
  EXPECT_EQ(replayed.action_count, live.action_count);
  ASSERT_EQ(replayed.action_lines.size(), live.action_lines.size());
  for (size_t i = 0; i < replayed.action_lines.size(); ++i) {
    EXPECT_EQ(replayed.action_lines[i], live.action_lines[i])
        << "action line " << i;
  }
  ASSERT_EQ(replayed.mrc_lines.size(), live.mrc_lines.size());
  for (size_t i = 0; i < replayed.mrc_lines.size(); ++i) {
    EXPECT_EQ(replayed.mrc_lines[i], live.mrc_lines[i]) << "mrc line " << i;
  }
  std::remove(path.c_str());
}

TEST(TieredReplayTest, TierFailReplayMatchesLiveActionTrace) {
  const std::string path = TempPath("fglb_tiered_replay_fail.fglbcap");
  // fglb_sim's default tier-fail schedule for a 450s run: the SSD dies
  // cold mid-run, recovers, then later merely degrades.
  const std::string fault_spec =
      "tier@150:replica=0,mode=fail,duration=75;"
      "tier@300:replica=0,mode=degrade,factor=10,duration=75";
  const LiveTieredRun live =
      RunLive(path, fault_spec, 1, 7, 450, DefaultTier());
  ASSERT_FALSE(live.action_lines.empty());

  const LiveTieredRun replayed = RunReplay(path);
  EXPECT_EQ(replayed.action_count, live.action_count);
  ASSERT_EQ(replayed.action_lines.size(), live.action_lines.size());
  for (size_t i = 0; i < replayed.action_lines.size(); ++i) {
    EXPECT_EQ(replayed.action_lines[i], live.action_lines[i])
        << "action line " << i;
  }
  ASSERT_EQ(replayed.mrc_lines.size(), live.mrc_lines.size());
  for (size_t i = 0; i < replayed.mrc_lines.size(); ++i) {
    EXPECT_EQ(replayed.mrc_lines[i], live.mrc_lines[i]) << "mrc line " << i;
  }
  std::remove(path.c_str());
}

TEST(TieredReplayTest, TierConfigRoundTripsThroughCaptureInfoBlock) {
  const std::string path = TempPath("fglb_tiered_replay_info.fglbcap");
  TierConfig tier;
  tier.pages = 8192;
  tier.read_us = 250;
  tier.demote = true;

  {
    ClusterHarness harness;
    AssembleTierThrash(&harness, 60, /*seed=*/3, tier,
                       ReplacementPolicy::kArc);
    CaptureWriter writer(&harness.sim());
    CaptureInfo info;
    info.seed = 3;
    info.fault_seed = 1;
    info.scenario = "tier-thrash";
    info.duration_seconds = 60;
    info.interval_seconds = harness.retuner().config().interval_seconds;
    info.mrc_sample_rate = harness.retuner().config().mrc.sample_rate;
    info.max_migrations_per_interval =
        harness.retuner().config().max_migrations_per_interval;
    info.tier_spec = tier.ToString();
    info.replacement_spec = ReplacementPolicyName(ReplacementPolicy::kArc);
    std::string error;
    ASSERT_TRUE(writer.Open(path, info, SnapshotTopology(harness), &error))
        << error;
    harness.AttachRecorders(&writer, &writer);
    harness.Start();
    harness.RunFor(60);
    ASSERT_TRUE(writer.Finalize(harness.retuner().actions(),
                                harness.retuner().samples()));
  }

  Capture capture;
  std::string error;
  ASSERT_TRUE(ReadCapture(path, &capture, &error)) << error;
  EXPECT_EQ(capture.info.tier_spec, "pages=8192,read_us=250,demote=1");
  EXPECT_EQ(capture.info.replacement_spec, std::string("arc"));

  // Building the replay re-applies both specs as engine defaults before
  // any replica exists, so the rebuilt engines carry the same hierarchy.
  ReplayRunner runner(&capture, ReplayBuildOptions{});
  ASSERT_TRUE(runner.Build(&error)) << error;
  const TierConfig& rebuilt = runner.harness()->resources().engine_tier();
  EXPECT_EQ(rebuilt.pages, 8192u);
  EXPECT_DOUBLE_EQ(rebuilt.read_us, 250);
  EXPECT_TRUE(rebuilt.demote);
  EXPECT_EQ(runner.harness()->resources().engine_replacement(),
            ReplacementPolicy::kArc);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fglb
