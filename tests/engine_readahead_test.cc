#include <gtest/gtest.h>

#include "engine/database_engine.h"
#include "storage/page.h"

namespace fglb {
namespace {

// Focused tests of the engine's extent read-ahead and counter
// bookkeeping on hand-built templates.

QueryTemplate ScanTemplate(uint64_t region_pages, double mean_pages,
                           uint64_t region_offset = 0) {
  AccessComponent c;
  c.table = 3;
  c.table_pages = 200000;
  c.region_offset = region_offset;
  c.region_pages = region_pages;
  c.kind = AccessComponent::Kind::kSequentialScan;
  c.mean_pages = mean_pages;
  QueryTemplate t;
  t.id = 50;
  t.name = "scan";
  t.components = {c};
  return t;
}

QueryTemplate LookupTemplate(double mean_pages, double write_fraction = 0) {
  AccessComponent c;
  c.table = 4;
  c.table_pages = 5000;
  c.kind = AccessComponent::Kind::kPointLookups;
  c.zipf_theta = 0.8;
  c.mean_pages = mean_pages;
  c.write_fraction = write_fraction;
  QueryTemplate t;
  t.id = 51;
  t.name = "lookup";
  t.components = {c};
  return t;
}

class ReadAheadTest : public ::testing::Test {
 protected:
  ReadAheadTest() {
    DatabaseEngine::Options options;
    options.buffer_pool_pages = 4096;
    options.seed = 99;
    engine_ = std::make_unique<DatabaseEngine>("ra", options, &disk_);
  }

  ExecutionCounters Run(const QueryTemplate& tmpl) {
    QueryInstance q;
    q.app = 1;
    q.tmpl = &tmpl;
    return engine_->Execute(q);
  }

  DiskModel disk_;
  std::unique_ptr<DatabaseEngine> engine_;
};

TEST_F(ReadAheadTest, ExtentCountMatchesScanLength) {
  // A 640-page scan spans 10 or 11 extents depending on alignment.
  const QueryTemplate scan = ScanTemplate(100000, 640);
  const ExecutionCounters c = Run(scan);
  EXPECT_GE(c.read_aheads, 10u);
  EXPECT_LE(c.read_aheads, 12u);
  // Physical reads: each fetch brings a whole extent.
  EXPECT_EQ(c.buffer_misses, c.read_aheads * kExtentPages);
  EXPECT_EQ(c.random_misses, 0u);
}

TEST_F(ReadAheadTest, RepeatScanOfCachedRegionIsFree) {
  // A small region that fits the pool: the second scan hits entirely.
  const QueryTemplate scan = ScanTemplate(1024, 1024);
  Run(scan);
  uint64_t second_fetches = 0;
  // Scans pick random starts; run a few to cover the region and then
  // measure.
  for (int i = 0; i < 5; ++i) Run(scan);
  second_fetches = Run(scan).read_aheads;
  EXPECT_EQ(second_fetches, 0u);
}

TEST_F(ReadAheadTest, CountersAreInternallyConsistent) {
  const QueryTemplate lookup = LookupTemplate(200, 0.3);
  for (int i = 0; i < 10; ++i) {
    const ExecutionCounters c = Run(lookup);
    EXPECT_GE(c.buffer_misses, c.random_misses);
    EXPECT_EQ(c.io_requests,
              c.random_misses + c.read_aheads + c.page_writes);
    EXPECT_GT(c.page_accesses, 0u);
    EXPECT_GT(c.cpu_seconds, 0.0);
  }
}

TEST_F(ReadAheadTest, WriteStripesAreSortedAndUnique) {
  const QueryTemplate writer = LookupTemplate(100, 0.8);
  for (int i = 0; i < 5; ++i) {
    const ExecutionCounters c = Run(writer);
    ASSERT_FALSE(c.write_stripes.empty());
    for (size_t j = 1; j < c.write_stripes.size(); ++j) {
      EXPECT_LT(c.write_stripes[j - 1], c.write_stripes[j]);
    }
    EXPECT_GT(c.commit_seconds, 0.0);
  }
}

TEST_F(ReadAheadTest, ReadOnlyQueryHasNoCommitWork) {
  const QueryTemplate reader = LookupTemplate(50, 0.0);
  const ExecutionCounters c = Run(reader);
  EXPECT_TRUE(c.write_stripes.empty());
  EXPECT_DOUBLE_EQ(c.commit_seconds, 0.0);
  EXPECT_EQ(c.page_writes, 0u);
}

TEST_F(ReadAheadTest, QuotaConfinesReadAheadPollution) {
  // Without a quota, a big scan evicts the lookup class's hot set;
  // with one, the lookup class keeps hitting.
  const QueryTemplate lookup = LookupTemplate(100);
  const QueryTemplate scan = ScanTemplate(100000, 4000);

  // Warm the lookup class.
  for (int i = 0; i < 80; ++i) Run(lookup);
  const ExecutionCounters warm = Run(lookup);

  QueryInstance sq;
  sq.app = 1;
  sq.tmpl = &scan;
  ASSERT_TRUE(engine_->SetQuota(sq.class_key(), 256));
  Run(scan);
  const ExecutionCounters after_contained = Run(lookup);
  // The contained scan displaced (almost) nothing.
  EXPECT_LE(after_contained.random_misses, warm.random_misses + 5);

  engine_->DropQuota(sq.class_key());
  Run(scan);
  Run(scan);
  const ExecutionCounters after_polluted = Run(lookup);
  EXPECT_GT(after_polluted.random_misses,
            after_contained.random_misses + 10);
}

TEST_F(ReadAheadTest, ScanInsideQuotaStillHitsViaReadAhead) {
  const QueryTemplate scan = ScanTemplate(100000, 2000);
  QueryInstance sq;
  sq.app = 1;
  sq.tmpl = &scan;
  ASSERT_TRUE(engine_->SetQuota(sq.class_key(), 256));
  const ExecutionCounters c = Run(scan);
  // Logical accesses mostly hit (prefetch landed them just in time)
  // even though the partition is tiny.
  const double stall_fraction =
      static_cast<double>(c.random_misses + c.read_aheads) /
      static_cast<double>(c.page_accesses);
  EXPECT_LT(stall_fraction, 0.05);
}

}  // namespace
}  // namespace fglb
