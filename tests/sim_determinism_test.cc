// Determinism properties of the DES kernel, checked differentially
// between the calendar-queue scheduler and the legacy binary heap
// (kept behind Simulator::QueueKind for exactly this purpose). The
// deterministic-replay contract rests on one queue invariant: events
// execute in (timestamp, scheduling order), with ties broken strictly
// by the order ScheduleAt was called — under every insertion pattern,
// including same-timestamp floods and schedule-from-callback chains.

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/simulator.h"

namespace fglb {
namespace {

using ExecutionLog = std::vector<std::pair<double, int>>;

// Schedules `count` events with timestamps drawn from a small discrete
// set (forcing heavy tie collisions) in a random order, and returns
// the (time, id) execution log.
ExecutionLog RunFlatSchedule(Simulator::QueueKind kind, uint64_t seed,
                             int count) {
  Simulator sim(kind);
  Rng rng(seed);
  ExecutionLog log;
  for (int id = 0; id < count; ++id) {
    // 8 distinct timestamps over `count` events: ~count/8 ties each.
    const double when = static_cast<double>(rng.NextUint64(8)) * 0.5;
    sim.ScheduleAt(when, [&log, when, id] { log.emplace_back(when, id); });
  }
  sim.RunToCompletion();
  EXPECT_EQ(log.size(), static_cast<size_t>(count));
  EXPECT_EQ(sim.executed_events(), static_cast<uint64_t>(count));
  EXPECT_EQ(sim.pending_events(), 0u);
  return log;
}

// Self-expanding schedule: every event may schedule up to two children
// at randomized delays (including zero — a same-timestamp tie created
// *during* execution), until the budget runs out.
ExecutionLog RunRecursiveSchedule(Simulator::QueueKind kind, uint64_t seed,
                                  int budget) {
  Simulator sim(kind);
  Rng rng(seed);
  ExecutionLog log;
  int next_id = 0;
  int remaining = budget;
  struct Spawn {
    Simulator* sim;
    Rng* rng;
    ExecutionLog* log;
    int* next_id;
    int* remaining;
    int id;
    void operator()() const {
      log->emplace_back(sim->Now(), id);
      const uint64_t children = rng->NextUint64(3);
      for (uint64_t c = 0; c < children; ++c) {
        if (*remaining == 0) return;
        --*remaining;
        static constexpr double kDelays[] = {0.0, 0.125, 1.0, 37.5};
        const double delay = kDelays[rng->NextUint64(4)];
        Spawn child = *this;
        child.id = (*next_id)++;
        sim->ScheduleAfter(delay, child);
      }
    }
  };
  for (int i = 0; i < 4 && remaining > 0; ++i) {
    --remaining;
    sim.ScheduleAt(0.0, Spawn{&sim, &rng, &log, &next_id, &remaining,
                              next_id});
    ++next_id;
  }
  sim.RunToCompletion();
  return log;
}

TEST(SimDeterminismTest, SameTimestampExecutesInSchedulingOrder) {
  for (const auto kind : {Simulator::QueueKind::kCalendar,
                          Simulator::QueueKind::kLegacyHeap}) {
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      const ExecutionLog log = RunFlatSchedule(kind, seed, 512);
      for (size_t i = 1; i < log.size(); ++i) {
        ASSERT_LE(log[i - 1].first, log[i].first)
            << "time went backwards at step " << i << " (seed " << seed
            << ")";
        if (log[i - 1].first == log[i].first) {
          // Tie: ids were assigned in scheduling order, so they must
          // execute in ascending order.
          ASSERT_LT(log[i - 1].second, log[i].second)
              << "tie broke out of scheduling order at step " << i
              << " (seed " << seed << ")";
        }
      }
    }
  }
}

TEST(SimDeterminismTest, CalendarMatchesLegacyHeapOnFlatSchedules) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    EXPECT_EQ(RunFlatSchedule(Simulator::QueueKind::kCalendar, seed, 512),
              RunFlatSchedule(Simulator::QueueKind::kLegacyHeap, seed, 512))
        << "queue disciplines diverged (seed " << seed << ")";
  }
}

TEST(SimDeterminismTest, CalendarMatchesLegacyHeapOnRecursiveSchedules) {
  // The recursive schedule spans delays from 0 to 37.5s, so the
  // calendar queue resizes (grow on the initial flood, shrink on the
  // drain) and rotates through many bucket years mid-run.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const ExecutionLog calendar = RunRecursiveSchedule(
        Simulator::QueueKind::kCalendar, seed, 4000);
    const ExecutionLog heap = RunRecursiveSchedule(
        Simulator::QueueKind::kLegacyHeap, seed, 4000);
    ASSERT_EQ(calendar.size(), heap.size()) << "seed " << seed;
    EXPECT_EQ(calendar, heap) << "queue disciplines diverged (seed "
                              << seed << ")";
  }
}

TEST(SimDeterminismTest, RunUntilAdvancesClockWithAndWithoutEvents) {
  for (const auto kind : {Simulator::QueueKind::kCalendar,
                          Simulator::QueueKind::kLegacyHeap}) {
    Simulator sim(kind);
    // No events: the clock still advances to the boundary.
    sim.RunUntil(5.0);
    EXPECT_EQ(sim.Now(), 5.0);
    // An event exactly at the boundary executes; one past it does not.
    int fired = 0;
    sim.ScheduleAt(7.0, [&] { ++fired; });
    sim.ScheduleAt(7.0 + 1e-9, [&] { ++fired; });
    sim.RunUntil(7.0);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.Now(), 7.0);
    EXPECT_EQ(sim.pending_events(), 1u);
    // A boundary in the past never moves the clock backwards.
    sim.RunUntil(2.0);
    EXPECT_EQ(sim.Now(), 7.0);
    sim.RunToCompletion();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.executed_events(), 2u);
  }
}

TEST(SimDeterminismTest, ExecutedCountStaysExactAcrossQueueKinds) {
  // sim.events_executed must count every event, not every 64th (only
  // the queue-depth gauge is sampled).
  for (const auto kind : {Simulator::QueueKind::kCalendar,
                          Simulator::QueueKind::kLegacyHeap}) {
    Simulator sim(kind);
    constexpr int kEvents = 1000;  // deliberately not a multiple of 64
    for (int i = 0; i < kEvents; ++i) {
      sim.ScheduleAt(0.25 * static_cast<double>(i % 7), [] {});
    }
    sim.RunToCompletion();
    EXPECT_EQ(sim.executed_events(), static_cast<uint64_t>(kEvents));
  }
}

}  // namespace
}  // namespace fglb
