#include "mrc/mattson_stack.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "mrc/miss_ratio_curve.h"
#include "mrc/mrc_tracker.h"
#include "mrc/sampled_mattson_stack.h"
#include "storage/buffer_pool.h"

namespace fglb {
namespace {

std::vector<PageId> MakeZipfTrace(uint64_t pages, double theta, size_t n,
                                  uint64_t seed) {
  Rng rng(seed);
  ZipfGenerator zipf(pages, theta);
  std::vector<PageId> trace;
  trace.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    trace.push_back(MakePageId(1, ScrambleToDomain(zipf.Sample(rng), pages)));
  }
  return trace;
}

std::vector<PageId> MakeScanTrace(uint64_t region, int repetitions) {
  std::vector<PageId> trace;
  for (int r = 0; r < repetitions; ++r) {
    for (uint64_t i = 0; i < region; ++i) trace.push_back(MakePageId(2, i));
  }
  return trace;
}

TEST(MattsonStackTest, FirstAccessIsColdMiss) {
  ListMattsonStack stack;
  EXPECT_EQ(stack.Access(MakePageId(1, 1)), 0u);
  EXPECT_EQ(stack.cold_misses(), 1u);
  EXPECT_EQ(stack.total_accesses(), 1u);
}

TEST(MattsonStackTest, ImmediateReuseHasDepthOne) {
  ListMattsonStack stack;
  stack.Access(MakePageId(1, 1));
  EXPECT_EQ(stack.Access(MakePageId(1, 1)), 1u);
  ASSERT_GE(stack.hit_counts().size(), 1u);
  EXPECT_EQ(stack.hit_counts()[0], 1u);
}

TEST(MattsonStackTest, DepthCountsDistinctIntermediatePages) {
  ListMattsonStack stack;
  stack.Access(MakePageId(1, 1));
  stack.Access(MakePageId(1, 2));
  stack.Access(MakePageId(1, 3));
  // Page 1 has two distinct pages above it: depth 3.
  EXPECT_EQ(stack.Access(MakePageId(1, 1)), 3u);
}

TEST(MattsonStackTest, RepeatedIntermediateDoesNotInflateDepth) {
  ListMattsonStack stack;
  stack.Access(MakePageId(1, 1));
  stack.Access(MakePageId(1, 2));
  stack.Access(MakePageId(1, 2));
  stack.Access(MakePageId(1, 2));
  EXPECT_EQ(stack.Access(MakePageId(1, 1)), 2u);
}

// Property: the Fenwick implementation is exactly equivalent to the
// list oracle on random traces.
class MattsonEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double, size_t>> {
};

TEST_P(MattsonEquivalenceTest, FenwickMatchesListOracle) {
  const auto [pages, theta, n] = GetParam();
  const std::vector<PageId> trace = MakeZipfTrace(pages, theta, n, 99 + n);
  ListMattsonStack list;
  FenwickMattsonStack fenwick;
  for (PageId p : trace) {
    const uint64_t a = list.Access(p);
    const uint64_t b = fenwick.Access(p);
    ASSERT_EQ(a, b);
  }
  EXPECT_EQ(list.cold_misses(), fenwick.cold_misses());
  EXPECT_EQ(list.hit_counts(), fenwick.hit_counts());
  EXPECT_EQ(list.distinct_pages(), fenwick.distinct_pages());
}

INSTANTIATE_TEST_SUITE_P(
    Traces, MattsonEquivalenceTest,
    ::testing::Values(std::make_tuple(16, 0.0, 500),
                      std::make_tuple(64, 0.9, 2000),
                      std::make_tuple(500, 1.2, 5000),
                      std::make_tuple(2000, 0.5, 20000),
                      std::make_tuple(8, 0.99, 10000)));

// Property: for every cache size m, the hit count predicted by the
// stack algorithm equals what a real LRU buffer pool of size m
// achieves on the same trace (the inclusion property in action).
class MrcLruConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MrcLruConsistencyTest, CurvePredictsRealLru) {
  const uint64_t cache_pages = GetParam();
  const std::vector<PageId> trace = MakeZipfTrace(300, 0.8, 8000, 7);
  const MissRatioCurve curve = MissRatioCurve::FromTrace(trace);

  BufferPool pool(cache_pages);
  for (PageId p : trace) pool.Access(p);
  const double real_miss_ratio = pool.stats().miss_ratio();
  EXPECT_NEAR(curve.MissRatioAt(cache_pages), real_miss_ratio, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(CacheSizes, MrcLruConsistencyTest,
                         ::testing::Values(1, 2, 5, 10, 50, 100, 200, 400));

TEST(MissRatioCurveTest, EmptyTrace) {
  const MissRatioCurve curve = MissRatioCurve::FromTrace({});
  EXPECT_TRUE(curve.empty());
  EXPECT_DOUBLE_EQ(curve.MissRatioAt(0), 1.0);
  EXPECT_DOUBLE_EQ(curve.MissRatioAt(100), 1.0);
}

TEST(MissRatioCurveTest, ZeroCacheMissesEverything) {
  const std::vector<PageId> trace = MakeZipfTrace(100, 0.9, 1000, 3);
  const MissRatioCurve curve = MissRatioCurve::FromTrace(trace);
  EXPECT_DOUBLE_EQ(curve.MissRatioAt(0), 1.0);
}

TEST(MissRatioCurveTest, MonotoneNonIncreasing) {
  const std::vector<PageId> trace = MakeZipfTrace(400, 1.0, 20000, 5);
  const MissRatioCurve curve = MissRatioCurve::FromTrace(trace);
  double last = 1.0;
  for (uint64_t m = 0; m <= curve.max_pages() + 10; ++m) {
    const double mr = curve.MissRatioAt(m);
    EXPECT_LE(mr, last + 1e-12);
    last = mr;
  }
}

TEST(MissRatioCurveTest, FloorIsColdMissRatio) {
  const std::vector<PageId> trace = MakeZipfTrace(50, 0.5, 5000, 11);
  const MissRatioCurve curve = MissRatioCurve::FromTrace(trace);
  // With a cache bigger than every reuse distance, only cold misses
  // remain: 50 distinct pages out of 5000 accesses.
  EXPECT_NEAR(curve.MissRatioAt(1000), 50.0 / 5000.0, 1e-12);
}

TEST(MissRatioCurveTest, ScanHasCliffAtRegionSize) {
  // A repeated scan of R pages has miss ratio ~1 for caches < R and
  // ~cold-only for caches >= R.
  const uint64_t region = 64;
  const MissRatioCurve curve =
      MissRatioCurve::FromTrace(MakeScanTrace(region, 10));
  EXPECT_GT(curve.MissRatioAt(region - 1), 0.9);
  EXPECT_LT(curve.MissRatioAt(region), 0.2);
}

TEST(MrcParametersTest, HotWorkloadNeedsLittleAcceptableMemory) {
  const std::vector<PageId> trace = MakeZipfTrace(2000, 1.2, 30000, 13);
  const MissRatioCurve curve = MissRatioCurve::FromTrace(trace);
  MrcConfig config;
  config.max_server_pages = 4096;
  const MrcParameters params = curve.ComputeParameters(config);
  EXPECT_GT(params.total_memory_pages, 0u);
  EXPECT_LE(params.acceptable_memory_pages, params.total_memory_pages);
  EXPECT_GE(params.acceptable_miss_ratio, params.ideal_miss_ratio);
  EXPECT_LE(params.acceptable_miss_ratio,
            params.ideal_miss_ratio + config.acceptable_threshold + 1e-12);
  // Hot zipf: much less than the whole footprint suffices.
  EXPECT_LT(params.acceptable_memory_pages, 2000u);
}

TEST(MrcParametersTest, CappedByServerMemory) {
  const std::vector<PageId> trace = MakeScanTrace(5000, 3);
  const MissRatioCurve curve = MissRatioCurve::FromTrace(trace);
  MrcConfig config;
  config.max_server_pages = 1000;
  const MrcParameters params = curve.ComputeParameters(config);
  EXPECT_LE(params.total_memory_pages, 1000u);
}

TEST(MrcParametersTest, SignificantChangeDetection) {
  MrcConfig config;  // significant_change_fraction = 0.5
  MrcParameters stable;
  stable.total_memory_pages = 4000;
  stable.acceptable_memory_pages = 2000;
  MrcParameters same = stable;
  EXPECT_FALSE(MissRatioCurve::SignificantChange(stable, same, config));
  MrcParameters bigger = stable;
  bigger.acceptable_memory_pages = 3100;  // +55%
  EXPECT_TRUE(MissRatioCurve::SignificantChange(stable, bigger, config));
  // Shrinkage beyond the threshold also counts (the paper's no-index
  // BestSeller case: acceptable memory 6982 -> 3695).
  MrcParameters smaller = stable;
  smaller.total_memory_pages = 1000;
  smaller.acceptable_memory_pages = 500;
  EXPECT_TRUE(MissRatioCurve::SignificantChange(stable, smaller, config));
  MrcParameters slightly = stable;
  slightly.total_memory_pages = 4400;  // +10% < 50% threshold
  EXPECT_FALSE(MissRatioCurve::SignificantChange(stable, slightly, config));
  MrcParameters slightly_down = stable;
  slightly_down.acceptable_memory_pages = 1500;  // -25% < 50% threshold
  EXPECT_FALSE(
      MissRatioCurve::SignificantChange(stable, slightly_down, config));
}

TEST(MrcTrackerTest, NewClassIsSuspect) {
  MrcConfig config;
  MrcTracker tracker(config);
  EXPECT_FALSE(tracker.has_stable());
  const auto rec = tracker.Recompute(MakeZipfTrace(100, 0.9, 3000, 17));
  EXPECT_TRUE(rec.suspect);
}

TEST(MrcTrackerTest, UnchangedPatternNotSuspect) {
  MrcConfig config;
  MrcTracker tracker(config);
  tracker.SetStableFromTrace(MakeZipfTrace(500, 0.9, 20000, 19));
  ASSERT_TRUE(tracker.has_stable());
  // Same distribution, different sample.
  const auto rec = tracker.Recompute(MakeZipfTrace(500, 0.9, 20000, 23));
  EXPECT_FALSE(rec.suspect);
}

TEST(MrcTrackerTest, GrownWorkingSetIsSuspect) {
  MrcConfig config;
  MrcTracker tracker(config);
  tracker.SetStableFromTrace(MakeZipfTrace(300, 0.9, 20000, 29));
  // Working set grows 10x.
  const auto rec = tracker.Recompute(MakeZipfTrace(3000, 0.3, 20000, 31));
  EXPECT_TRUE(rec.suspect);
}

TEST(SampledMattsonStackTest, RateStepCorrectionRecomputedPerSnapshot) {
  // Regression for adjusted-mass drift: the SHARDS-adj residual must be
  // recomputed from the snapshot's own totals every time hit_counts()
  // is read, not cached at the first read. Scenario: snapshot
  // mid-stream, then a rate step — the class keeps referencing pages,
  // but only ones outside the spatial sample, so the exact reference
  // count grows while the sampled mass stands still. A cached
  // correction would under-count all post-snapshot mass.
  const double kRate = 0.25;
  SampledMattsonStack stepped(kRate);
  ASSERT_EQ(stepped.scale(), 4u);

  std::vector<PageId> unsampled;
  for (uint64_t i = 0; unsampled.size() < 64; ++i) {
    const PageId page = MakePageId(3, i);
    if (!stepped.InSample(page)) unsampled.push_back(page);
  }

  std::vector<PageId> trace = MakeZipfTrace(1000, 0.8, 8000, 47);
  for (PageId p : trace) stepped.Access(p);
  // First snapshot (materializes the scaled view once).
  const std::vector<uint64_t> first = stepped.hit_counts();
  EXPECT_EQ(stepped.total_accesses(), 8000u);
  const int64_t phase1_residual =
      8000 - static_cast<int64_t>(4 * stepped.sampled_accesses());

  // Rate step: 8000 more references, none visible to the sample.
  Rng rng(53);
  for (int i = 0; i < 8000; ++i) {
    const PageId p = unsampled[rng.NextUint64(unsampled.size())];
    stepped.Access(p);
    trace.push_back(p);
  }
  const std::vector<uint64_t>& second = stepped.hit_counts();

  // Differential reference: a fresh stack fed the whole trace in one
  // go (it never took a mid-stream snapshot, so a stale cached
  // correction in `stepped` would show up as a histogram mismatch).
  SampledMattsonStack fresh(kRate);
  for (PageId p : trace) fresh.Access(p);
  EXPECT_EQ(second, fresh.hit_counts());
  EXPECT_EQ(stepped.cold_misses(), fresh.cold_misses());
  EXPECT_EQ(stepped.total_accesses(), fresh.total_accesses());

  // The post-step sample is in deficit (the step added mass the sample
  // never saw), so the folded residual must restore exact mass
  // conservation: scaled hits + scaled cold == true reference count.
  uint64_t mass = stepped.cold_misses();
  for (uint64_t h : second) mass += h;
  EXPECT_EQ(mass, stepped.total_accesses());
  // And the correction moved with the step: at scale 4 the raw
  // histogram never lands in bucket 0, so the second snapshot's bucket
  // 0 is exactly the recomputed residual — the step's 8000 unseen
  // references plus whatever deficit/excess phase 1 left behind.
  ASSERT_FALSE(second.empty());
  EXPECT_EQ(static_cast<int64_t>(second[0]), phase1_residual + 8000);
}

TEST(MrcTrackerTest, AdoptSilencesSuspicion) {
  MrcConfig config;
  MrcTracker tracker(config);
  tracker.SetStableFromTrace(MakeZipfTrace(300, 0.9, 20000, 37));
  const auto rec = tracker.Recompute(MakeZipfTrace(3000, 0.3, 20000, 41));
  ASSERT_TRUE(rec.suspect);
  tracker.AdoptAsStable(rec);
  const auto again = tracker.Recompute(MakeZipfTrace(3000, 0.3, 20000, 43));
  EXPECT_FALSE(again.suspect);
}

}  // namespace
}  // namespace fglb
