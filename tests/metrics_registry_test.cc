#include "common/metrics_registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/thread_pool.h"

namespace fglb {
namespace {

TEST(CounterTest, IncrementAndSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Set(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(0.75);
  g.Set(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 0.25);
}

TEST(MaxGaugeTest, TracksHighWaterMarkAndResetsOnTake) {
  MaxGauge m;
  EXPECT_DOUBLE_EQ(m.value(), 0.0);
  m.Update(3.0);
  m.Update(7.0);
  m.Update(5.0);  // below the peak: no effect
  EXPECT_DOUBLE_EQ(m.value(), 7.0);
  EXPECT_DOUBLE_EQ(m.Take(), 7.0);
  // Take resets: the next interval starts from zero.
  EXPECT_DOUBLE_EQ(m.value(), 0.0);
  m.Update(2.0);
  EXPECT_DOUBLE_EQ(m.Take(), 2.0);
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.counter("a.b.c");
  Counter* c2 = registry.counter("a.b.c");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.counter("a.b.d"), c1);
  // Same name, different instrument kind: distinct namespaces.
  Gauge* g = registry.gauge("a.b.c");
  MaxGauge* m = registry.max_gauge("a.b.c");
  LatencyHistogram* h = registry.histogram("a.b.c");
  EXPECT_NE(static_cast<void*>(g), static_cast<void*>(c1));
  EXPECT_NE(static_cast<void*>(m), static_cast<void*>(g));
  EXPECT_NE(static_cast<void*>(h), static_cast<void*>(c1));
  EXPECT_EQ(registry.max_gauge("a.b.c"), m);
  EXPECT_EQ(registry.counter_count(), 2u);
  EXPECT_EQ(registry.gauge_count(), 1u);
  EXPECT_EQ(registry.max_gauge_count(), 1u);
  EXPECT_EQ(registry.histogram_count(), 1u);
}

TEST(LatencyHistogramTest, BucketBoundsArePowersOfTwo) {
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketLowerBoundUs(0), 0.0);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperBoundUs(0), 1.0);
  for (size_t i = 1; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(LatencyHistogram::BucketLowerBoundUs(i),
                     std::pow(2.0, static_cast<double>(i - 1)));
    EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperBoundUs(i),
                     std::pow(2.0, static_cast<double>(i)));
  }
}

TEST(LatencyHistogramTest, RecordsAtBucketEdges) {
  LatencyHistogram h;
  h.Record(0.0);    // bucket 0: [0, 1)
  h.Record(0.999);  // bucket 0
  h.Record(1.0);    // bucket 1: [1, 2)
  h.Record(2.0);    // bucket 2: [2, 4)
  h.Record(3.999);  // bucket 2
  h.Record(4.0);    // bucket 3: [4, 8)
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum_us(), 0.0 + 0.999 + 1.0 + 2.0 + 3.999 + 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.max_us(), 4.0);
  EXPECT_NEAR(h.mean_us(), h.sum_us() / 6.0, 1e-12);
}

TEST(LatencyHistogramTest, OverflowLandsInLastBucket) {
  LatencyHistogram h;
  h.Record(1e15);  // far beyond 2^39 us
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kNumBuckets - 1), 1u);
  EXPECT_DOUBLE_EQ(h.max_us(), 1e15);
}

TEST(LatencyHistogramTest, NonFiniteAndNegativeClampToZero) {
  LatencyHistogram h;
  h.Record(-5.0);
  h.Record(std::nan(""));
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum_us(), 0.0);
}

TEST(LatencyHistogramTest, PercentileIsMonotoneAndBracketed) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(10.0);    // bucket [8, 16)
  for (int i = 0; i < 100; ++i) h.Record(1000.0);  // bucket [512, 1024)
  const double p10 = h.Percentile(0.10);
  const double p50 = h.Percentile(0.50);
  const double p99 = h.Percentile(0.99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
  // The low half lives in [8,16); the high tail in [512,1024).
  EXPECT_GE(p10, 8.0);
  EXPECT_LE(p10, 16.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesKeepExactTotals) {
  MetricsRegistry registry;
  Counter* hits = registry.counter("test.hits");
  LatencyHistogram* lat = registry.histogram("test.lat_us");
  ThreadPool pool(4);
  constexpr size_t kTasks = 64;
  constexpr int kPerTask = 1000;
  pool.ParallelFor(kTasks, [&](size_t task) {
    for (int i = 0; i < kPerTask; ++i) {
      hits->Increment();
      lat->Record(static_cast<double>(task % 8) + 1.0);
    }
    // Concurrent find-or-create of an already-registered name must be
    // safe and return the same instrument.
    EXPECT_EQ(registry.counter("test.hits"), hits);
  });
  EXPECT_EQ(hits->value(), kTasks * kPerTask);
  EXPECT_EQ(lat->count(), kTasks * kPerTask);
  uint64_t bucket_total = 0;
  for (size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    bucket_total += lat->bucket_count(b);
  }
  EXPECT_EQ(bucket_total, kTasks * kPerTask);
}

TEST(MetricsRegistryTest, ToJsonIsParseableAndComplete) {
  MetricsRegistry registry;
  registry.counter("cluster.queries")->Increment(123);
  registry.gauge("server.0.cpu_utilization")->Set(0.5);
  registry.max_gauge("sim.queue_depth_max")->Update(42.0);
  LatencyHistogram* h = registry.histogram("controller.tick_us");
  h->Record(5.0);
  h->Record(100.0);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(registry.ToJson(), &root, &error)) << error;
  EXPECT_DOUBLE_EQ(root.NumberOr("v", 0), 1);

  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->NumberOr("cluster.queries", 0), 123);

  const JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->NumberOr("server.0.cpu_utilization", 0), 0.5);
  // Max gauges render among the gauges; the snapshot consumed the peak.
  EXPECT_DOUBLE_EQ(gauges->NumberOr("sim.queue_depth_max", 0), 42.0);
  EXPECT_DOUBLE_EQ(registry.max_gauge("sim.queue_depth_max")->value(), 0.0);

  const JsonValue* histograms = root.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* tick = histograms->Find("controller.tick_us");
  ASSERT_NE(tick, nullptr);
  EXPECT_DOUBLE_EQ(tick->NumberOr("count", 0), 2);
  EXPECT_DOUBLE_EQ(tick->NumberOr("sum_us", 0), 105.0);
  EXPECT_NE(tick->Find("p50_us"), nullptr);
  EXPECT_NE(tick->Find("p95_us"), nullptr);
  EXPECT_NE(tick->Find("p99_us"), nullptr);
  EXPECT_DOUBLE_EQ(tick->NumberOr("max_us", 0), 100.0);
  const JsonValue* buckets = tick->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  // Non-empty buckets only, each as [lower_bound_us, count].
  ASSERT_EQ(buckets->array.size(), 2u);
  double bucket_events = 0;
  for (const JsonValue& pair : buckets->array) {
    ASSERT_TRUE(pair.is_array());
    ASSERT_EQ(pair.array.size(), 2u);
    bucket_events += pair.array[1].number;
  }
  EXPECT_DOUBLE_EQ(bucket_events, 2);
}

TEST(MetricsRegistryTest, WriteJsonRoundTripsThroughDisk) {
  MetricsRegistry registry;
  registry.counter("x")->Increment(9);
  const std::string path = ::testing::TempDir() + "/fglb_metrics_test.json";
  ASSERT_TRUE(registry.WriteJson(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  JsonValue root;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(contents, &root, &error)) << error;
  EXPECT_DOUBLE_EQ(root.Find("counters")->NumberOr("x", 0), 9);
}

}  // namespace
}  // namespace fglb
