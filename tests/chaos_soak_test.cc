#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/trace_check.h"
#include "scenarios/harness.h"
#include "sim/fault_injector.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

// Chaos soak: random fault schedules (crashes, disk spikes, slowdowns,
// stats dropouts, migration windows) against a shared-replica cluster.
// Whatever the schedule does, the run must terminate, conserve every
// query of the closed loop, respect the controller's retry and
// per-interval migration budgets, and leave a well-formed trace.

struct SoakResult {
  uint64_t emitted = 0;     // queries the emulators saw complete
  uint64_t completed = 0;   // queries the schedulers accounted
  uint64_t faults = 0;      // applied fault count
};

SoakResult RunSoak(uint64_t seed, const RandomFaultProfile& profile,
                   double duration, bool survivability = false) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  SelectiveRetuner::Config config;
  config.max_migrations_per_interval = 2;
  ClusterHarness h(config);
  h.trace().EnableBuffering();
  if (survivability) {
    // net windows need the DES-delivered transport to bite, and ctl
    // crashes restore from FGLBCKPT1 instead of cold-starting.
    h.EnableStatsChannel();
    h.EnableCheckpointing();
  }
  h.AddServers(3);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = h.AddApplication(MakeRubis(rubis_options));
  Replica* shared = h.resources().CreateReplica(
      h.resources().servers()[0].get(), 8192);
  Replica* spare = h.resources().CreateReplica(
      h.resources().servers()[1].get(), 8192, /*engine_seed=*/2);
  tpcw->AddReplica(shared);
  tpcw->AddReplica(spare);
  rubis->AddReplica(shared);
  ClientEmulator* tpcw_clients =
      h.AddConstantClients(tpcw, 80, /*seed=*/seed);
  ClientEmulator* rubis_clients =
      h.AddConstantClients(rubis, 30, /*seed=*/seed + 1);

  FaultSpec spec = MakeRandomFaultSpec(seed, duration, profile);
  const size_t scheduled = spec.events.size();
  h.InjectFaults(std::move(spec), seed);
  h.Start();
  h.RunFor(duration);

  // Quiesce: stop the client loops and let in-flight work finish so
  // conservation can be checked exactly.
  tpcw_clients->Stop();
  rubis_clients->Stop();
  h.RunFor(120);
  EXPECT_EQ(tpcw_clients->active_clients(), 0u);
  EXPECT_EQ(rubis_clients->active_clients(), 0u);

  // Closed-loop conservation: every query an emulator issued came back
  // through a scheduler. A crash that lost an in-flight query would
  // leave its client stuck (caught above) or break this equality.
  SoakResult result;
  result.emitted = tpcw_clients->completed_queries() +
                   rubis_clients->completed_queries();
  result.completed = tpcw->total_completed() + rubis->total_completed();
  EXPECT_EQ(result.emitted, result.completed);
  EXPECT_GT(result.completed, 0u);

  // Every scheduled event fired (as an application or a counted no-op).
  const FaultInjector* injector = h.fault_injector();
  result.faults = injector->faults_injected();
  EXPECT_GE(injector->faults_injected() + injector->noop_faults(),
            scheduled);

  // Migration state machine invariants: the retry budget is a hard
  // cap, and the per-interval start budget bounds total starts.
  const auto& stats = h.retuner().migration_stats();
  EXPECT_LE(stats.max_attempts_observed,
            1 + h.retuner().config().migration_max_retries);
  EXPECT_LE(stats.applied + stats.abandoned, stats.started);
  EXPECT_LE(stats.started, 2 * h.retuner().samples().size());

  // The trace survives the churn structurally intact.
  std::string error;
  EXPECT_TRUE(CheckTraceLines(h.trace().BufferedLines(), &error)) << error;
  return result;
}

TEST(ChaosSoakTest, RandomSchedulesKeepInvariantsAcrossSeeds) {
  RandomFaultProfile profile;
  profile.replicas = 2;
  profile.servers = 3;
  for (uint64_t seed : {3u, 17u, 42u, 101u, 7777u}) {
    RunSoak(seed, profile, /*duration=*/300);
  }
}

TEST(ChaosSoakTest, HeavyProfileStaysBounded) {
  // Twice the churn, overlapping windows, wider time band.
  RandomFaultProfile profile;
  profile.replicas = 2;
  profile.servers = 3;
  profile.crashes = 2;
  profile.disk_spikes = 2;
  profile.slowdowns = 2;
  profile.stats_dropouts = 2;
  profile.migration_windows = 2;
  profile.min_time_fraction = 0.1;
  profile.max_time_fraction = 0.9;
  const SoakResult result = RunSoak(9001, profile, /*duration=*/400);
  EXPECT_GT(result.faults, 0u);
}

TEST(ChaosSoakTest, SurvivabilityProfileKeepsInvariantsAcrossSeeds) {
  // The full fault surface: legacy churn plus tier faults, lossy
  // stats-transport windows and a controller crash/restart, against a
  // harness running the stats channel and checkpoint cadence. The same
  // conservation / budget / trace invariants must hold — a restored
  // controller double-starting migrations would blow the start budget,
  // and malformed recovery events would fail the trace check.
  RandomFaultProfile profile;
  profile.replicas = 2;
  profile.servers = 3;
  profile.tier_faults = 1;
  profile.net_windows = 2;
  profile.ctl_crashes = 1;
  for (uint64_t seed : {5u, 23u, 404u}) {
    const SoakResult result =
        RunSoak(seed, profile, /*duration=*/400, /*survivability=*/true);
    EXPECT_GT(result.faults, 0u);
  }
}

}  // namespace
}  // namespace fglb
