#include "cluster/scheduler.h"

#include <gtest/gtest.h>

#include "cluster/resource_manager.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

// Read-one/write-all consistency behaviour of the scheduler tier: the
// paper's substrate guarantees reads see all committed writes (the
// scheduler routes reads to caught-up replicas).
class SchedulerConsistencyTest : public ::testing::Test {
 protected:
  SchedulerConsistencyTest()
      : resources_(&sim_), app_(MakeTpcw()), scheduler_(&sim_, &app_) {}

  Replica* NewReplica() {
    PhysicalServer* server = resources_.AddServer({});
    Replica* r = resources_.CreateReplica(server, 4096);
    scheduler_.AddReplica(r);
    return r;
  }

  QueryInstance Query(QueryClassId cls) {
    QueryInstance q;
    q.app = app_.id;
    q.tmpl = app_.FindTemplate(cls);
    q.submit_time = sim_.Now();
    return q;
  }

  Simulator sim_;
  ResourceManager resources_;
  ApplicationSpec app_;
  Scheduler scheduler_;
};

TEST_F(SchedulerConsistencyTest, WritesAdvanceAppliedSeqEverywhere) {
  Replica* a = NewReplica();
  Replica* b = NewReplica();
  Replica* c = NewReplica();
  for (int i = 0; i < 5; ++i) {
    scheduler_.Submit(Query(kTpcwBuyConfirm), nullptr);
  }
  sim_.RunToCompletion();
  EXPECT_EQ(a->AppliedSeq(app_.id), 5u);
  EXPECT_EQ(b->AppliedSeq(app_.id), 5u);
  EXPECT_EQ(c->AppliedSeq(app_.id), 5u);
}

TEST_F(SchedulerConsistencyTest, ReadAfterWritePrefersFreshReplica) {
  Replica* a = NewReplica();
  Replica* b = NewReplica();
  // A write is in flight on both replicas; a is made artificially
  // fresh, b stale, then a read arrives.
  scheduler_.Submit(Query(kTpcwBuyConfirm), nullptr);
  a->SetAppliedSeq(app_.id, 1);  // a already applied
  // b has not (its apply is still queued).
  ASSERT_EQ(b->AppliedSeq(app_.id), 0u);
  const uint64_t a_before = a->inflight();
  scheduler_.Submit(Query(kTpcwHome), nullptr);
  // The read must have been routed to the fresh replica a.
  EXPECT_EQ(a->inflight(), a_before + 1);
  sim_.RunToCompletion();
}

TEST_F(SchedulerConsistencyTest, ReadsBalanceWhenAllFresh) {
  Replica* a = NewReplica();
  Replica* b = NewReplica();
  for (int i = 0; i < 60; ++i) {
    scheduler_.Submit(Query(kTpcwHome), nullptr);
    sim_.RunUntil(sim_.Now() + 1.0);
  }
  sim_.RunToCompletion();
  EXPECT_GT(a->completed(), 15u);
  EXPECT_GT(b->completed(), 15u);
}

TEST_F(SchedulerConsistencyTest, WriteSequenceMonotonePerApp) {
  Replica* a = NewReplica();
  uint64_t last = 0;
  for (int i = 0; i < 10; ++i) {
    scheduler_.Submit(Query(kTpcwAdminUpdate), nullptr);
    sim_.RunToCompletion();
    const uint64_t seq = a->AppliedSeq(app_.id);
    EXPECT_GT(seq, last);
    last = seq;
  }
  EXPECT_EQ(last, 10u);
}

TEST_F(SchedulerConsistencyTest, DedicatedTargetStillReceivesWrites) {
  Replica* a = NewReplica();
  Replica* b = NewReplica();
  scheduler_.DedicateReplica(kTpcwBestSeller, b);
  scheduler_.Submit(Query(kTpcwBuyConfirm), nullptr);
  sim_.RunToCompletion();
  // Full replication: the dedicated replica applies writes too.
  EXPECT_EQ(a->AppliedSeq(app_.id), 1u);
  EXPECT_EQ(b->AppliedSeq(app_.id), 1u);
}

TEST_F(SchedulerConsistencyTest, RemovedReplicaStopsReceivingWork) {
  Replica* a = NewReplica();
  Replica* b = NewReplica();
  sim_.RunToCompletion();
  scheduler_.RemoveReplica(b);
  const uint64_t b_before = b->completed() + b->inflight();
  for (int i = 0; i < 10; ++i) {
    scheduler_.Submit(Query(kTpcwHome), nullptr);
    scheduler_.Submit(Query(kTpcwBuyConfirm), nullptr);
  }
  sim_.RunToCompletion();
  EXPECT_EQ(b->completed() + b->inflight(), b_before);
  EXPECT_GT(a->completed(), 0u);
}

}  // namespace
}  // namespace fglb
