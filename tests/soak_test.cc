#include <gtest/gtest.h>

#include "scenarios/harness.h"
#include "workload/oltp.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

// Long-horizon soak: three tenants, sine + step + constant loads, a
// consolidation event, an index drop, and two simulated hours. Asserts
// global invariants rather than specific outcomes: the run completes,
// stays deterministic, every sample is well-formed, capacity never
// exceeds the pool, and the system is not thrashing (bounded actions).
TEST(SoakTest, TwoSimulatedHoursThreeTenants) {
  auto run = [] {
    ClusterHarness h;
    h.AddServers(6);

    Scheduler* tpcw = h.AddApplication(MakeTpcw());
    RubisOptions rubis_options;
    rubis_options.app_id = 2;
    Scheduler* rubis = h.AddApplication(MakeRubis(rubis_options));
    OltpOptions oltp_options;
    oltp_options.app_id = 4;
    Scheduler* oltp = h.AddApplication(MakeOltp(oltp_options));

    Replica* shared = h.resources().CreateReplica(
        h.resources().servers()[0].get(), 8192);
    tpcw->AddReplica(shared);
    rubis->AddReplica(shared);
    // OLTP bootstraps through the controller (no initial replica).

    ClientEmulator::Options churn;
    churn.session_time_seconds = 300;
    h.AddClients(tpcw, std::make_unique<SineLoad>(200, 150, 1800),
                 /*seed=*/31, churn);
    h.AddClients(rubis,
                 std::make_unique<StepLoad>(
                     std::vector<std::pair<SimTime, double>>{{1200, 40}}),
                 /*seed=*/33);
    h.AddConstantClients(oltp, 30, /*seed=*/35);

    h.Start();
    h.RunFor(1800);
    // Mid-run environment change: TPC-W loses the O_DATE index.
    TpcwOptions no_index;
    no_index.o_date_index = false;
    const ApplicationSpec degraded = MakeTpcw(no_index);
    ApplicationSpec* live = h.mutable_app(tpcw);
    for (auto& tmpl : live->templates) {
      if (tmpl.id == kTpcwBestSeller) {
        tmpl.components = degraded.FindTemplate(kTpcwBestSeller)->components;
      }
    }
    h.RunFor(7200 - 1800);

    // --- invariants ---
    // 720 intervals sampled, each covering every registered app.
    EXPECT_EQ(h.retuner().samples().size(), 720u);
    for (const auto& sample : h.retuner().samples()) {
      EXPECT_EQ(sample.apps.size(), 3u);
      EXPECT_EQ(sample.servers.size(), 6u);
      for (const auto& as : sample.apps) {
        EXPECT_GE(as.avg_latency, 0.0);
        // Note: avg may legitimately exceed p95 (a <5% class, e.g.
        // BestSeller scans, can dominate the mean).
        EXPECT_GE(as.p95_latency, 0.0);
        EXPECT_GE(as.servers_used, 0);
        EXPECT_LE(as.servers_used, 6);
      }
      for (const auto& sv : sample.servers) {
        EXPECT_GE(sv.cpu_utilization, -1e-9);
        EXPECT_LE(sv.cpu_utilization, 1.0 + 1e-9);
        EXPECT_GE(sv.io_utilization, -1e-9);
        EXPECT_LE(sv.io_utilization, 1.0 + 1e-9);
      }
    }
    // Memory never over-committed on any server.
    for (const auto& server : h.resources().servers()) {
      uint64_t pool_pages = 0;
      for (Replica* r : h.resources().ReplicasOn(server.get())) {
        pool_pages += r->engine().pool().capacity();
      }
      EXPECT_LE(pool_pages, server->memory_pages());
    }
    // The controller is active but not thrashing: bounded actions over
    // 2 hours (720 intervals).
    EXPECT_GE(h.retuner().actions().size(), 2u);
    EXPECT_LE(h.retuner().actions().size(), 120u);
    // Work got done for every tenant.
    EXPECT_GT(tpcw->total_completed(), 100000u);
    EXPECT_GT(rubis->total_completed(), 10000u);
    EXPECT_GT(oltp->total_completed(), 50000u);

    return std::make_tuple(tpcw->total_completed(), rubis->total_completed(),
                           oltp->total_completed(),
                           h.retuner().actions().size());
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second) << "soak run must be deterministic";
}

}  // namespace
}  // namespace fglb
