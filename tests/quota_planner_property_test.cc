#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/quota_planner.h"

namespace fglb {
namespace {

// Property-based checks over randomized inputs: whatever the profiles
// look like, every plan the planner emits must satisfy the §3.3.2
// invariants.
class QuotaPlannerPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, int,
                                                 uint64_t>> {
 protected:
  static std::vector<ClassMemoryProfile> RandomProfiles(int count,
                                                        uint64_t max_pages,
                                                        Rng& rng,
                                                        uint32_t base_id) {
    std::vector<ClassMemoryProfile> profiles;
    for (int i = 0; i < count; ++i) {
      ClassMemoryProfile p;
      p.key = MakeClassKey(1, base_id + static_cast<uint32_t>(i));
      p.params.acceptable_memory_pages = rng.NextUint64(max_pages + 1);
      p.params.total_memory_pages =
          p.params.acceptable_memory_pages +
          rng.NextUint64(max_pages / 2 + 1);
      p.params.ideal_miss_ratio = rng.NextDouble() * 0.2;
      p.params.acceptable_miss_ratio = p.params.ideal_miss_ratio + 0.02;
      profiles.push_back(p);
    }
    return profiles;
  }
};

TEST_P(QuotaPlannerPropertyTest, PlanInvariantsHold) {
  const auto [pool, n_problem, n_others, max_pages] = GetParam();
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed * 7919);
    const auto problem = RandomProfiles(n_problem, max_pages, rng, 100);
    const auto others = RandomProfiles(n_others, max_pages, rng, 200);
    QuotaPlanner planner;
    const QuotaPlan plan = planner.Plan(pool, problem, others);

    uint64_t total_need = 0;
    for (const auto& p : problem) total_need += p.params.total_memory_pages;
    for (const auto& p : others) total_need += p.params.total_memory_pages;

    if (plan.placement_fits) {
      // Placement fits iff the summed total need fits the pool, and
      // then the plan does nothing else.
      EXPECT_LE(total_need, pool);
      EXPECT_TRUE(plan.quotas.empty());
      EXPECT_TRUE(plan.reschedule.empty());
      EXPECT_FALSE(plan.infeasible);
      continue;
    }
    EXPECT_GT(total_need, pool);

    // Each problem class lands in exactly one bucket.
    std::set<ClassKey> in_quota, in_reschedule;
    for (const auto& [key, pages] : plan.quotas) in_quota.insert(key);
    for (ClassKey key : plan.reschedule) in_reschedule.insert(key);
    EXPECT_EQ(in_quota.size() + in_reschedule.size(), problem.size());
    for (const auto& p : problem) {
      EXPECT_TRUE(in_quota.contains(p.key) ^ in_reschedule.contains(p.key))
          << "problem class must be exactly one of quota'd/rescheduled";
    }

    // Quotas respect the floor and the class's acceptable memory.
    uint64_t kept_acceptable = 0;
    for (const auto& p : problem) {
      if (!in_quota.contains(p.key)) continue;
      const uint64_t quota = plan.quotas.at(p.key);
      EXPECT_GE(quota, planner.min_quota_pages());
      EXPECT_GE(quota, p.params.acceptable_memory_pages);
      kept_acceptable += p.params.acceptable_memory_pages;
    }

    uint64_t others_acceptable = 0;
    for (const auto& p : others) {
      others_acceptable += p.params.acceptable_memory_pages;
    }
    if (!plan.infeasible) {
      // The fit test that justified keeping the quota'd classes.
      EXPECT_LE(kept_acceptable + others_acceptable, pool);
    } else {
      // Infeasible: every problem class was pushed out and the rest
      // still does not fit.
      EXPECT_TRUE(in_quota.empty());
      EXPECT_EQ(in_reschedule.size(), problem.size());
      EXPECT_GT(others_acceptable, pool);
    }

    // Reschedules leave largest-acceptable-first.
    uint64_t last = UINT64_MAX;
    for (ClassKey key : plan.reschedule) {
      uint64_t acceptable = 0;
      for (const auto& p : problem) {
        if (p.key == key) acceptable = p.params.acceptable_memory_pages;
      }
      EXPECT_LE(acceptable, last);
      last = acceptable;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QuotaPlannerPropertyTest,
    ::testing::Values(std::make_tuple(8192ULL, 3, 10, 3000ULL),
                      std::make_tuple(8192ULL, 1, 14, 6000ULL),
                      std::make_tuple(4096ULL, 5, 5, 2000ULL),
                      std::make_tuple(1024ULL, 4, 2, 1500ULL),
                      std::make_tuple(16384ULL, 2, 20, 1000ULL),
                      std::make_tuple(512ULL, 6, 0, 600ULL)));

}  // namespace
}  // namespace fglb
