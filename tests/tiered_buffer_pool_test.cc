// Second-tier block cache invariants: TierConfig's canonical spec
// string round-trips and rejects malformed input, the pool's
// demote/promote cycle is exclusive (a promoted page leaves the tier),
// quotas partition the tier like the DRAM pool, the fault hooks drop
// residency cold, and the two-level quota planner jumps LRU cliffs a
// fixed-granule greedy would starve.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/quota_planner.h"
#include "mrc/miss_ratio_curve.h"
#include "storage/tiered_buffer_pool.h"
#include "workload/query_class.h"

namespace fglb {
namespace {

TEST(TierConfigTest, DisabledTierEncodesAsEmptyString) {
  TierConfig config;  // pages=0: tier absent
  EXPECT_FALSE(config.enabled());
  EXPECT_EQ(config.ToString(), "");

  TierConfig parsed;
  parsed.pages = 123;  // must be reset by parsing ""
  std::string error;
  ASSERT_TRUE(TierConfig::Parse("", &parsed, &error)) << error;
  EXPECT_FALSE(parsed.enabled());
}

TEST(TierConfigTest, RoundTripsThroughString) {
  TierConfig config;
  config.pages = 16384;
  config.read_us = 62.5;
  config.demote = false;
  const std::string text = config.ToString();
  EXPECT_EQ(text, "pages=16384,read_us=62.5,demote=0");

  TierConfig parsed;
  std::string error;
  ASSERT_TRUE(TierConfig::Parse(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.pages, 16384u);
  EXPECT_DOUBLE_EQ(parsed.read_us, 62.5);
  EXPECT_FALSE(parsed.demote);
  EXPECT_EQ(parsed.ToString(), text);
}

TEST(TierConfigTest, ParseAcceptsKeysInAnyOrder) {
  TierConfig parsed;
  std::string error;
  ASSERT_TRUE(
      TierConfig::Parse("demote=1,read_us=250,pages=4096", &parsed, &error))
      << error;
  EXPECT_EQ(parsed.pages, 4096u);
  EXPECT_DOUBLE_EQ(parsed.read_us, 250);
  EXPECT_TRUE(parsed.demote);
}

TEST(TierConfigTest, ParseRejectsMalformedSpecs) {
  TierConfig parsed;
  std::string error;
  EXPECT_FALSE(TierConfig::Parse("pages=abc", &parsed, &error));
  EXPECT_FALSE(TierConfig::Parse("pages", &parsed, &error));
  EXPECT_FALSE(TierConfig::Parse("pages=10.5", &parsed, &error));
  EXPECT_FALSE(TierConfig::Parse("pages=-5", &parsed, &error));
  EXPECT_FALSE(TierConfig::Parse("read_us=0", &parsed, &error));
  EXPECT_FALSE(TierConfig::Parse("demote=2", &parsed, &error));
  EXPECT_FALSE(TierConfig::Parse("bogus=1", &parsed, &error));
}

TierConfig MakeTier(uint64_t pages, double read_us = 100.0,
                    bool demote = true) {
  TierConfig config;
  config.pages = pages;
  config.read_us = read_us;
  config.demote = demote;
  return config;
}

TEST(TieredBufferPoolTest, PromoteHitRemovesThePage) {
  TieredBufferPool tier(MakeTier(128));
  const PartitionKey key = MakeClassKey(1, 4);
  tier.Demote(key, 42);
  EXPECT_EQ(tier.demotions(), 1u);
  EXPECT_TRUE(tier.Contains(key, 42));

  // The hit promotes the page back to DRAM; the tier copy is gone
  // (exclusive hierarchy), so a second lookup is a miss.
  EXPECT_TRUE(tier.PromoteHit(key, 42));
  EXPECT_FALSE(tier.Contains(key, 42));
  EXPECT_FALSE(tier.PromoteHit(key, 42));
  EXPECT_EQ(tier.promotions(), 1u);
  EXPECT_EQ(tier.tier_misses(), 1u);
}

TEST(TieredBufferPoolTest, QuotasPartitionTheTier) {
  TieredBufferPool tier(MakeTier(128));
  const PartitionKey hot = MakeClassKey(2, 4);
  const PartitionKey other = MakeClassKey(1, 1);

  ASSERT_TRUE(tier.SetQuota(hot, 64));
  EXPECT_EQ(tier.QuotaOf(hot), 64u);
  EXPECT_EQ(tier.dedicated_total(), 64u);
  // Combined dedicated quotas cannot exceed the device.
  EXPECT_FALSE(tier.SetQuota(other, 96));
  ASSERT_TRUE(tier.SetQuota(other, 64));

  // A demote lands in the owner's dedicated partition: invisible to
  // other keys, which only see their own partition plus the shared
  // region.
  tier.Demote(hot, 7);
  EXPECT_TRUE(tier.Contains(hot, 7));
  EXPECT_FALSE(tier.Contains(other, 7));
  EXPECT_FALSE(tier.PromoteHit(other, 7));
  EXPECT_TRUE(tier.PromoteHit(hot, 7));

  tier.DropQuota(hot);
  EXPECT_EQ(tier.QuotaOf(hot), 0u);
  EXPECT_EQ(tier.dedicated_total(), 64u);
}

TEST(TieredBufferPoolTest, SharedRegionEvictsLeastRecentlyDemoted) {
  TieredBufferPool tier(MakeTier(4));
  const PartitionKey key = MakeClassKey(1, 1);
  for (PageId page = 0; page < 6; ++page) tier.Demote(key, page);
  EXPECT_EQ(tier.demotions(), 6u);
  EXPECT_EQ(tier.resident_pages(), 4u);
  // LRU admission queue: the oldest cast-offs fell out.
  EXPECT_FALSE(tier.Contains(key, 0));
  EXPECT_FALSE(tier.Contains(key, 1));
  EXPECT_TRUE(tier.Contains(key, 2));
  EXPECT_TRUE(tier.Contains(key, 5));
}

TEST(TieredBufferPoolTest, DemoteOffDropsEveryDemotion) {
  TieredBufferPool tier(MakeTier(128, 100.0, /*demote=*/false));
  const PartitionKey key = MakeClassKey(1, 1);
  tier.Demote(key, 42);
  EXPECT_EQ(tier.demotions(), 0u);
  EXPECT_EQ(tier.dropped_demotions(), 1u);
  EXPECT_EQ(tier.resident_pages(), 0u);
  EXPECT_FALSE(tier.PromoteHit(key, 42));
}

TEST(TieredBufferPoolTest, FailedTierServesNothingAndRecoversCold) {
  TieredBufferPool tier(MakeTier(128));
  const PartitionKey key = MakeClassKey(1, 1);
  for (PageId page = 0; page < 3; ++page) tier.Demote(key, page);
  ASSERT_EQ(tier.resident_pages(), 3u);

  // Device loss: residency is gone immediately, lookups miss, and
  // demotions are dropped on the floor.
  tier.SetFailed(true);
  EXPECT_TRUE(tier.failed());
  EXPECT_EQ(tier.resident_pages(), 0u);
  EXPECT_FALSE(tier.Contains(key, 0));
  EXPECT_FALSE(tier.PromoteHit(key, 0));
  tier.Demote(key, 99);
  EXPECT_EQ(tier.dropped_demotions(), 1u);

  // Recovery is cold: nothing resident until new demotions arrive.
  tier.SetFailed(false);
  EXPECT_EQ(tier.resident_pages(), 0u);
  tier.Demote(key, 99);
  EXPECT_TRUE(tier.Contains(key, 99));
}

TEST(TieredBufferPoolTest, LatencyFactorScalesHitServiceTime) {
  TieredBufferPool tier(MakeTier(128, 250.0));
  EXPECT_DOUBLE_EQ(tier.HitServiceSeconds(), 250e-6);
  tier.SetLatencyFactor(10);
  EXPECT_DOUBLE_EQ(tier.HitServiceSeconds(), 2500e-6);
  tier.SetLatencyFactor(1);
  EXPECT_DOUBLE_EQ(tier.HitServiceSeconds(), 250e-6);
}

// --- two-level curve read-out -----------------------------------------

// A cyclic scan of `loop` pages under LRU: every reuse lands at stack
// depth `loop`, so the curve is flat at 1.0 until the whole loop fits
// and drops to the cold-miss floor there — the canonical LRU cliff.
std::shared_ptr<const MissRatioCurve> CliffCurve(uint64_t loop,
                                                 uint64_t hits,
                                                 uint64_t cold) {
  std::vector<uint64_t> histogram(loop, 0);
  histogram[loop - 1] = hits;
  return std::make_shared<const MissRatioCurve>(
      MissRatioCurve::FromHistogram(histogram, cold, hits + cold));
}

// A linear curve: one hit at every depth in [1, span], so the miss
// ratio falls by 1/span per page of cache — no cliffs anywhere.
std::shared_ptr<const MissRatioCurve> LinearCurve(uint64_t span) {
  std::vector<uint64_t> histogram(span, 1);
  return std::make_shared<const MissRatioCurve>(
      MissRatioCurve::FromHistogram(histogram, 0, span));
}

TEST(MissRatioCurveTierTest, Tier2HitRatioIsTheSecondReadOut) {
  const auto curve = CliffCurve(/*loop=*/1000, /*hits=*/990, /*cold=*/10);
  EXPECT_DOUBLE_EQ(curve->MissRatioAt(999), 1.0);
  EXPECT_NEAR(curve->MissRatioAt(1000), 0.01, 1e-12);
  // A tier-2 slice that crosses the cliff captures the whole loop.
  EXPECT_NEAR(curve->Tier2HitRatioAt(100, 900), 0.99, 1e-12);
  // One that stays on the flat part captures nothing.
  EXPECT_DOUBLE_EQ(curve->Tier2HitRatioAt(100, 800), 0.0);
  EXPECT_DOUBLE_EQ(curve->Tier2HitRatioAt(1000, 500), 0.0);
}

// --- PlanTiered -------------------------------------------------------

ClassMemoryProfile Profile(ClassKey key, uint64_t total, uint64_t acceptable,
                           double acceptable_miss,
                           std::shared_ptr<const MissRatioCurve> curve) {
  ClassMemoryProfile p;
  p.key = key;
  p.params.total_memory_pages = total;
  p.params.acceptable_memory_pages = acceptable;
  p.params.acceptable_miss_ratio = acceptable_miss;
  p.params.ideal_miss_ratio = acceptable_miss;
  p.curve = std::move(curve);
  return p;
}

TEST(QuotaPlannerTieredTest, PlacementFitsWhenDramCoversTotalNeed) {
  QuotaPlanner planner;
  const QuotaPlan plan = planner.PlanTiered(
      8192, 16384,
      {Profile(MakeClassKey(2, 4), 3000, 2000, 0.05, LinearCurve(3000))},
      {Profile(MakeClassKey(1, 1), 4000, 3500, 0.05, nullptr)},
      TierCostModel{});
  EXPECT_TRUE(plan.placement_fits);
  EXPECT_TRUE(plan.quotas.empty());
  EXPECT_TRUE(plan.tier2_quotas.empty());
}

TEST(QuotaPlannerTieredTest, JumpsTheLruCliffIntoTheSecondTier) {
  // A cyclic scan whose loop (12000 pages) dwarfs the DRAM left after
  // the stable classes take their share: every fixed-granule extension
  // shows zero marginal gain, so only scanning extensions (jumping the
  // cliff in one step) can see the win. DRAM-only planning could do
  // nothing for this class — its acceptable miss ratio is 1.0 — but
  // the tier pulls the whole loop off disk.
  const ClassKey scan = MakeClassKey(2, 4);
  QuotaPlanner planner;
  const QuotaPlan plan = planner.PlanTiered(
      8192, 16384,
      {Profile(scan, 8192, 0, 1.0, CliffCurve(12000, 990, 10))},
      {Profile(MakeClassKey(1, 1), 7680, 7680, 0.02, nullptr)},
      TierCostModel{});

  EXPECT_FALSE(plan.placement_fits);
  EXPECT_FALSE(plan.infeasible);
  EXPECT_TRUE(plan.reschedule.empty());
  ASSERT_EQ(plan.quotas.count(scan), 1u);
  ASSERT_EQ(plan.tier2_quotas.count(scan), 1u);
  // The combined allocation crosses the cliff: the loop fits in
  // DRAM + tier-2, so misses collapse to the cold floor.
  EXPECT_GE(plan.quotas.at(scan) + plan.tier2_quotas.at(scan), 12000u);
  EXPECT_LE(plan.tier2_quotas.at(scan), 16384u);
}

TEST(QuotaPlannerTieredTest, SplitsASmoothCurveAcrossBothTiers) {
  // A linear curve with a 10000-page working set and a lenient
  // acceptable point (10% misses at 9000 pages): the greedy pass
  // spends the scarce DRAM first (each DRAM page also upgrades tier-2
  // hits to memory speed), then extends tier-2 until the curve goes
  // flat. The blend beats the DRAM-only acceptable target because the
  // tier serves at SSD speed what would otherwise go to disk.
  const ClassKey smooth = MakeClassKey(2, 4);
  QuotaPlanner planner;
  const QuotaPlan plan = planner.PlanTiered(
      8192, 16384,
      {Profile(smooth, 10000, 9000, 0.1, LinearCurve(10000))},
      {Profile(MakeClassKey(1, 1), 7680, 7680, 0.02, nullptr)},
      TierCostModel{});

  EXPECT_TRUE(plan.reschedule.empty());
  ASSERT_EQ(plan.quotas.count(smooth), 1u);
  ASSERT_EQ(plan.tier2_quotas.count(smooth), 1u);
  // All 512 pages of free DRAM go to the class (floor 256 + greedy),
  // and tier-2 covers the rest of the working set to within a granule.
  EXPECT_EQ(plan.quotas.at(smooth), 512u);
  EXPECT_GE(plan.quotas.at(smooth) + plan.tier2_quotas.at(smooth), 9984u);
}

TEST(QuotaPlannerTieredTest, ReschedulesWhenTheBlendCannotMatchDram) {
  // Same smooth class but with a strict acceptable point (2% misses):
  // serving most of its working set at SSD speed is worse than the
  // near-all-DRAM allocation it would get on another replica, so the
  // tier is not a substitute — reschedule.
  const ClassKey smooth = MakeClassKey(2, 4);
  QuotaPlanner planner;
  const QuotaPlan plan = planner.PlanTiered(
      8192, 16384,
      {Profile(smooth, 10000, 9800, 0.02, LinearCurve(10000))},
      {Profile(MakeClassKey(1, 1), 7680, 7680, 0.02, nullptr)},
      TierCostModel{});

  EXPECT_EQ(plan.quotas.count(smooth), 0u);
  EXPECT_TRUE(plan.tier2_quotas.empty());
  ASSERT_EQ(plan.reschedule.size(), 1u);
  EXPECT_EQ(plan.reschedule[0], smooth);
}

TEST(QuotaPlannerTieredTest, CurvelessProfilesFallBackToDramOnlyFit) {
  // Legacy profiles carry parameters but no curve: they are planned
  // with the DRAM-only acceptable-fit rule against whatever DRAM the
  // greedy pass left, and never receive tier-2 quotas.
  const ClassKey legacy = MakeClassKey(2, 4);
  QuotaPlanner planner;
  const QuotaPlan plan = planner.PlanTiered(
      8192, 16384, {Profile(legacy, 8192, 400, 0.05, nullptr)},
      {Profile(MakeClassKey(1, 1), 7680, 7680, 0.02, nullptr)},
      TierCostModel{});
  EXPECT_TRUE(plan.reschedule.empty());
  ASSERT_EQ(plan.quotas.count(legacy), 1u);
  EXPECT_EQ(plan.quotas.at(legacy), 400u);
  EXPECT_TRUE(plan.tier2_quotas.empty());

  // And when even that DRAM is not there, the class is rescheduled —
  // the tier cannot stand in for a curve it has never seen.
  const QuotaPlan crowded = planner.PlanTiered(
      8192, 16384, {Profile(legacy, 8192, 600, 0.05, nullptr)},
      {Profile(MakeClassKey(1, 1), 7680, 7680, 0.02, nullptr)},
      TierCostModel{});
  EXPECT_EQ(crowded.quotas.count(legacy), 0u);
  ASSERT_EQ(crowded.reschedule.size(), 1u);
  EXPECT_EQ(crowded.reschedule[0], legacy);
}

TEST(QuotaPlannerTieredTest, InfeasibleWhenOthersAloneOverflowDram) {
  QuotaPlanner planner;
  const QuotaPlan plan = planner.PlanTiered(
      8192, 16384,
      {Profile(MakeClassKey(2, 4), 8192, 0, 1.0, CliffCurve(12000, 990, 10))},
      {Profile(MakeClassKey(1, 1), 9000, 9000, 0.02, nullptr)},
      TierCostModel{});
  EXPECT_TRUE(plan.infeasible);
  EXPECT_TRUE(plan.quotas.empty());
  EXPECT_TRUE(plan.tier2_quotas.empty());
  EXPECT_TRUE(plan.reschedule.empty());
}

TEST(QuotaPlannerTieredTest, TierQuotasAreAlwaysASubsetOfQuotas) {
  QuotaPlanner planner;
  const QuotaPlan plan = planner.PlanTiered(
      8192, 16384,
      {Profile(MakeClassKey(2, 4), 8192, 0, 1.0, CliffCurve(12000, 990, 10)),
       Profile(MakeClassKey(2, 7), 4000, 3000, 0.1, LinearCurve(4000))},
      {Profile(MakeClassKey(1, 1), 7000, 7000, 0.02, nullptr)},
      TierCostModel{});
  for (const auto& [key, pages] : plan.tier2_quotas) {
    EXPECT_EQ(plan.quotas.count(key), 1u)
        << "tier2 quota without a DRAM quota for key " << key;
    EXPECT_GT(pages, 0u);
  }
}

}  // namespace
}  // namespace fglb
