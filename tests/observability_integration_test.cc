#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "scenarios/harness.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

// The Table 2 interference scenario from integration_test, traced: two
// tenants share one engine, RUBiS arrives mid-run and wrecks TPC-W's
// buffer pool, the controller diagnoses and acts. Every SLA-violating
// interval must leave a complete sla -> impact -> iqr -> mrc -> action
// decision chain in the trace (phases the cascade never reached appear
// as skipped events), and the registry must carry the controller's
// self-metrics.
std::vector<JsonValue> ParseAll(const std::vector<std::string>& lines) {
  std::vector<JsonValue> events;
  for (const std::string& line : lines) {
    JsonValue event;
    std::string error;
    EXPECT_TRUE(JsonValue::Parse(line, &event, &error))
        << error << " in: " << line;
    events.push_back(event);
  }
  return events;
}

class ObservabilityIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    harness_ = new ClusterHarness();
    harness_->trace().EnableBuffering();
    harness_->AddServers(3);
    Scheduler* tpcw = harness_->AddApplication(MakeTpcw());
    RubisOptions rubis_options;
    rubis_options.app_id = 2;
    Scheduler* rubis = harness_->AddApplication(MakeRubis(rubis_options));
    Replica* shared = harness_->resources().CreateReplica(
        harness_->resources().servers()[0].get(), 8192);
    tpcw->AddReplica(shared);
    rubis->AddReplica(shared);
    harness_->AddConstantClients(tpcw, 30, /*seed=*/11);
    harness_->Start();
    harness_->RunFor(400);
    harness_->AddClients(rubis,
                         std::make_unique<StepLoad>(
                             std::vector<std::pair<SimTime, double>>{
                                 {400, 30}}),
                         /*seed=*/13);
    harness_->RunFor(500);
    events_ = new std::vector<JsonValue>(
        ParseAll(harness_->trace().BufferedLines()));
  }

  static void TearDownTestSuite() {
    delete events_;
    events_ = nullptr;
    delete harness_;
    harness_ = nullptr;
  }

  static ClusterHarness* harness_;
  static std::vector<JsonValue>* events_;
};

ClusterHarness* ObservabilityIntegrationTest::harness_ = nullptr;
std::vector<JsonValue>* ObservabilityIntegrationTest::events_ = nullptr;

TEST_F(ObservabilityIntegrationTest, TraceIsWellFormed) {
  ASSERT_FALSE(events_->empty());
  double expected_seq = 0;
  for (const JsonValue& event : *events_) {
    EXPECT_DOUBLE_EQ(event.NumberOr("v", -1), 1);
    EXPECT_DOUBLE_EQ(event.NumberOr("seq", -1), expected_seq);
    EXPECT_NE(event.Find("mono_us"), nullptr);
    EXPECT_FALSE(event.StringOr("phase", "").empty());
    expected_seq += 1;
  }
  EXPECT_EQ(harness_->trace().events_emitted(), events_->size());
}

TEST_F(ObservabilityIntegrationTest, EverySlaEventStartsACompleteChain) {
  // Collect [start, end) index ranges of each violation scope: an "sla"
  // event up to (exclusive) the next "sla" event.
  std::vector<std::pair<size_t, size_t>> scopes;
  for (size_t i = 0; i < events_->size(); ++i) {
    if ((*events_)[i].StringOr("phase", "") != "sla") continue;
    if (!scopes.empty()) scopes.back().second = i;
    scopes.emplace_back(i, events_->size());
  }
  ASSERT_FALSE(scopes.empty()) << "no SLA-violating interval was traced";

  for (const auto& [start, end] : scopes) {
    const JsonValue& sla = (*events_)[start];
    // The sla event itself records the interval verdict.
    EXPECT_NE(sla.Find("sla_met"), nullptr);
    EXPECT_NE(sla.Find("avg_latency"), nullptr);
    EXPECT_NE(sla.Find("streak"), nullptr);

    size_t first_impact = 0, first_iqr = 0, first_mrc = 0, first_action = 0;
    std::map<std::string, int> counts;
    for (size_t i = start + 1; i < end; ++i) {
      const std::string phase = (*events_)[i].StringOr("phase", "");
      if (counts[phase]++ == 0) {
        if (phase == "impact") first_impact = i;
        if (phase == "iqr") first_iqr = i;
        if (phase == "mrc") first_mrc = i;
        if (phase == "action") first_action = i;
      }
    }
    // Complete chain: each diagnosis phase present at least once (as a
    // real or a skipped event) and at least one action verdict.
    EXPECT_GE(counts["impact"], 1) << "scope at event " << start;
    EXPECT_GE(counts["iqr"], 1) << "scope at event " << start;
    EXPECT_GE(counts["mrc"], 1) << "scope at event " << start;
    EXPECT_GE(counts["action"], 1) << "scope at event " << start;
    // Phase order within the scope mirrors the cascade.
    EXPECT_LT(first_impact, first_iqr);
    EXPECT_LT(first_iqr, first_mrc);
    EXPECT_LT(first_mrc, first_action);
  }
}

TEST_F(ObservabilityIntegrationTest, DiagnosisPhasesCarryPayloadAndTiming) {
  int live_impact = 0, live_iqr = 0, live_mrc = 0;
  for (const JsonValue& event : *events_) {
    const std::string phase = event.StringOr("phase", "");
    if (event.BoolOr("skipped", false)) {
      // Skipped back-fills still explain themselves.
      EXPECT_FALSE(event.StringOr("why", "").empty());
      continue;
    }
    if (phase == "impact") {
      ++live_impact;
      const JsonValue* classes = event.Find("classes");
      ASSERT_NE(classes, nullptr);
      EXPECT_TRUE(classes->is_array());
      EXPECT_GE(event.NumberOr("dur_us", -1), 0);
    } else if (phase == "iqr") {
      ++live_iqr;
      const JsonValue* fences = event.Find("fences");
      ASSERT_NE(fences, nullptr);
      ASSERT_TRUE(fences->is_array());
      for (const JsonValue& fence : fences->array) {
        EXPECT_LE(fence.NumberOr("q1", 0), fence.NumberOr("q3", 0));
        EXPECT_LE(fence.NumberOr("inner_hi", 0),
                  fence.NumberOr("outer_hi", 0));
      }
      EXPECT_NE(event.Find("outliers"), nullptr);
    } else if (phase == "mrc") {
      ++live_mrc;
      EXPECT_GE(event.NumberOr("candidates", -1), 0);
      EXPECT_GE(event.NumberOr("dur_us", -1), 0);
    }
  }
  // The interference run must have exercised the real (non-skipped)
  // diagnosis path at least once.
  EXPECT_GE(live_impact, 1);
  EXPECT_GE(live_iqr, 1);
  EXPECT_GE(live_mrc, 1);
}

TEST_F(ObservabilityIntegrationTest, ActionEventsMatchRetunerLog) {
  // Every non-"none" action event corresponds 1:1, in order, to the
  // retuner's own action log.
  std::vector<const JsonValue*> traced;
  for (const JsonValue& event : *events_) {
    if (event.StringOr("phase", "") != "action") continue;
    if (event.StringOr("kind", "") == "none") {
      EXPECT_FALSE(event.StringOr("why", "").empty());
      continue;
    }
    traced.push_back(&event);
  }
  const auto& actions = harness_->retuner().actions();
  ASSERT_EQ(traced.size(), actions.size());
  for (size_t i = 0; i < actions.size(); ++i) {
    EXPECT_EQ(traced[i]->StringOr("kind", ""),
              SelectiveRetuner::ActionKindName(actions[i].kind));
    EXPECT_EQ(traced[i]->StringOr("desc", ""), actions[i].description);
    EXPECT_DOUBLE_EQ(traced[i]->NumberOr("t", -1), actions[i].time);
  }
}

TEST_F(ObservabilityIntegrationTest, RegistryCarriesControllerMetrics) {
  MetricsRegistry& metrics = harness_->metrics();
  EXPECT_GT(metrics.histogram("controller.tick_us")->count(), 0u);
  EXPECT_GT(metrics.counter("controller.violations")->value(), 0u);
  EXPECT_GT(metrics.histogram("controller.diagnose.outlier_us")->count(), 0u);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(metrics.ToJson(), &root, &error)) << error;
  // The sampler published per-engine and per-server series.
  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  bool engine_series = false;
  for (const auto& [name, value] : counters->object) {
    if (name.rfind("engine.", 0) == 0) engine_series = true;
  }
  EXPECT_TRUE(engine_series);
  const JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  bool server_series = false;
  for (const auto& [name, value] : gauges->object) {
    if (name.rfind("server.", 0) == 0) server_series = true;
  }
  EXPECT_TRUE(server_series);
}

TEST(ObservabilityDisabledTest, NoBindingsAndNoEvents) {
  SelectiveRetuner::Config config;
  ClusterHarness h(config, /*observability=*/false);
  h.AddServers(2);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.AddConstantClients(tpcw, 10, /*seed=*/1);
  h.Start();
  h.RunFor(120);
  EXPECT_EQ(h.trace().events_emitted(), 0u);
  EXPECT_FALSE(h.trace().enabled());
  EXPECT_EQ(h.metrics().counter_count(), 0u);
  EXPECT_EQ(h.metrics().gauge_count(), 0u);
  EXPECT_EQ(h.metrics().histogram_count(), 0u);
}

TEST(ObservabilityDisabledTest, DisabledRunStaysDeterministicVsEnabled) {
  // Instrumentation must not perturb the simulation: the same scenario
  // with observability on and off completes the same queries and takes
  // the same actions.
  auto run = [](bool observability) {
    SelectiveRetuner::Config config;
    ClusterHarness h(config, observability);
    h.AddServers(2);
    Scheduler* tpcw = h.AddApplication(MakeTpcw());
    Replica* r = h.resources().CreateReplica(
        h.resources().servers()[0].get(), 8192);
    tpcw->AddReplica(r);
    h.AddConstantClients(tpcw, 25, /*seed=*/5);
    h.Start();
    h.RunFor(200);
    return std::make_tuple(tpcw->total_completed(),
                           h.retuner().actions().size(),
                           h.retuner().samples().size());
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace fglb
