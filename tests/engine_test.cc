#include "engine/database_engine.h"

#include <gtest/gtest.h>

#include "engine/metrics.h"
#include "engine/stats_collector.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

QueryInstance MakeQuery(const ApplicationSpec& app, QueryClassId cls) {
  QueryInstance q;
  q.app = app.id;
  q.tmpl = app.FindTemplate(cls);
  return q;
}

QueryTemplate ScanTemplate(uint64_t region_pages, double mean_pages) {
  AccessComponent c;
  c.table = 9;
  c.table_pages = region_pages;
  c.region_pages = region_pages;
  c.kind = AccessComponent::Kind::kSequentialScan;
  c.mean_pages = mean_pages;
  QueryTemplate t;
  t.id = 77;
  t.name = "Scan";
  t.components = {c};
  return t;
}

TEST(MetricsTest, NamesAndHelpers) {
  EXPECT_STREQ(MetricName(Metric::kLatency), "latency");
  EXPECT_STREQ(MetricName(Metric::kReadAheads), "read_aheads");
  EXPECT_TRUE(IsMemoryMetric(Metric::kBufferMisses));
  EXPECT_TRUE(IsMemoryMetric(Metric::kPageAccesses));
  EXPECT_TRUE(IsMemoryMetric(Metric::kReadAheads));
  EXPECT_FALSE(IsMemoryMetric(Metric::kLatency));
  EXPECT_FALSE(IsMemoryMetric(Metric::kThroughput));
  MetricVector v{};
  At(v, Metric::kLatency) = 1.5;
  EXPECT_DOUBLE_EQ(At(static_cast<const MetricVector&>(v), Metric::kLatency),
                   1.5);
}

TEST(StatsCollectorTest, IntervalAveragesAndReset) {
  StatsCollector stats(100);
  const ClassKey key = MakeClassKey(1, 2);
  ExecutionCounters c;
  c.page_accesses = 10;
  c.buffer_misses = 2;
  c.io_requests = 3;
  c.read_aheads = 1;
  stats.RecordQuery(key, 0.2, c);
  stats.RecordQuery(key, 0.4, c);
  auto snap = stats.EndInterval(10.0);
  ASSERT_TRUE(snap.contains(key));
  EXPECT_NEAR(At(snap[key], Metric::kLatency), 0.3, 1e-12);
  EXPECT_NEAR(At(snap[key], Metric::kThroughput), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(At(snap[key], Metric::kPageAccesses), 20.0);
  EXPECT_DOUBLE_EQ(At(snap[key], Metric::kBufferMisses), 4.0);
  EXPECT_DOUBLE_EQ(At(snap[key], Metric::kIoRequests), 6.0);
  EXPECT_DOUBLE_EQ(At(snap[key], Metric::kReadAheads), 2.0);
  // Second interval is empty.
  EXPECT_TRUE(stats.EndInterval(10.0).empty());
}

TEST(StatsCollectorTest, AccessWindowKeepsRecent) {
  StatsCollector stats(3);
  const ClassKey key = MakeClassKey(1, 1);
  for (uint64_t i = 0; i < 5; ++i) stats.RecordPageAccess(key, i);
  EXPECT_EQ(stats.AccessWindow(key), (std::vector<PageId>{2, 3, 4}));
  EXPECT_TRUE(stats.AccessWindow(MakeClassKey(9, 9)).empty());
}

TEST(StatsCollectorTest, WindowSurvivesIntervalEnd) {
  StatsCollector stats(10);
  const ClassKey key = MakeClassKey(1, 1);
  stats.RecordPageAccess(key, 42);
  stats.RecordQuery(key, 0.1, ExecutionCounters{});
  stats.EndInterval(1.0);
  EXPECT_EQ(stats.AccessWindow(key).size(), 1u);
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() {
    DatabaseEngine::Options options;
    options.buffer_pool_pages = 1024;
    options.seed = 5;
    engine_ = std::make_unique<DatabaseEngine>("e", options, &disk_);
  }
  DiskModel disk_;
  std::unique_ptr<DatabaseEngine> engine_;
};

TEST_F(EngineTest, ColdQueryMissesWarmQueryHits) {
  const ApplicationSpec app = MakeTpcw();
  const QueryInstance q = MakeQuery(app, kTpcwHome);
  uint64_t first_misses = 0;
  for (int i = 0; i < 50; ++i) {
    const ExecutionCounters c = engine_->Execute(q);
    if (i == 0) first_misses = c.buffer_misses;
  }
  EXPECT_GT(first_misses, 0u);
  // After warm-up, the hot home pages mostly hit.
  const ExecutionCounters warm = engine_->Execute(q);
  EXPECT_LT(warm.buffer_misses, first_misses);
}

TEST_F(EngineTest, CountersAreConsistent) {
  const ApplicationSpec app = MakeTpcw();
  const ExecutionCounters c =
      engine_->Execute(MakeQuery(app, kTpcwProductDetail));
  EXPECT_GT(c.page_accesses, 0u);
  EXPECT_GT(c.cpu_seconds, 0.0);
  EXPECT_LE(c.read_aheads, c.io_requests);
}

TEST_F(EngineTest, SequentialScanUsesReadAhead) {
  QueryTemplate scan = ScanTemplate(10000, 640);
  QueryInstance q;
  q.app = 1;
  q.tmpl = &scan;
  const ExecutionCounters c = engine_->Execute(q);
  // ~640 sequential pages = ~10 extents.
  EXPECT_GE(c.read_aheads, 8u);
  EXPECT_LE(c.read_aheads, 16u);
  // Pages fetched via read-ahead count as physical reads.
  EXPECT_GE(c.buffer_misses, c.page_accesses / 2);
  // But the scan itself hits in the pool (prefetch landed first).
  EXPECT_GT(engine_->pool().shared_stats().hit_ratio(), 0.9);
}

TEST_F(EngineTest, ScanIoDemandUsesExtentReads) {
  QueryTemplate scan = ScanTemplate(10000, 640);
  QueryInstance q;
  q.app = 1;
  q.tmpl = &scan;
  const ExecutionCounters c = engine_->Execute(q);
  // Sequential I/O: roughly read_aheads * extent time, far cheaper than
  // 640 random reads.
  EXPECT_LT(c.io_seconds, 640 * disk_.random_read_seconds / 4);
  EXPECT_NEAR(c.io_seconds, c.read_aheads * disk_.extent_read_seconds,
              disk_.extent_read_seconds * 3);
}

TEST_F(EngineTest, QuotaConfinesClass) {
  QueryTemplate scan = ScanTemplate(2000, 500);
  QueryInstance q;
  q.app = 1;
  q.tmpl = &scan;
  const ClassKey key = q.class_key();
  ASSERT_TRUE(engine_->SetQuota(key, 128));
  EXPECT_TRUE(engine_->pool().HasQuota(key));
  engine_->Execute(q);
  // The scan's pages went to its partition; the shared region holds
  // nothing of it.
  EXPECT_EQ(engine_->pool().shared_stats().accesses, 0u);
  EXPECT_GT(engine_->pool().StatsOf(key).accesses, 0u);
  engine_->DropQuota(key);
  EXPECT_FALSE(engine_->pool().HasQuota(key));
}

TEST_F(EngineTest, RecordCompletionFeedsStats) {
  const ApplicationSpec app = MakeTpcw();
  const QueryInstance q = MakeQuery(app, kTpcwHome);
  const ExecutionCounters c = engine_->Execute(q);
  engine_->RecordCompletion(q.class_key(), 0.25, c);
  auto snap = engine_->stats().EndInterval(5.0);
  ASSERT_TRUE(snap.contains(q.class_key()));
  EXPECT_NEAR(At(snap[q.class_key()], Metric::kLatency), 0.25, 1e-12);
}

TEST_F(EngineTest, AccessWindowPopulatedByExecution) {
  const ApplicationSpec app = MakeTpcw();
  const QueryInstance q = MakeQuery(app, kTpcwBestSeller);
  for (int i = 0; i < 5; ++i) engine_->Execute(q);
  EXPECT_GT(engine_->stats().AccessWindow(q.class_key()).size(), 100u);
}

TEST_F(EngineTest, WritesProduceWriteCountersAndIoTime) {
  const ApplicationSpec app = MakeTpcw();
  const QueryInstance q = MakeQuery(app, kTpcwBuyConfirm);
  uint64_t writes = 0;
  for (int i = 0; i < 20; ++i) writes += engine_->Execute(q).page_writes;
  EXPECT_GT(writes, 0u);
}

}  // namespace
}  // namespace fglb
