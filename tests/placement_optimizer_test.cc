#include "core/placement_optimizer.h"

#include <set>

#include <gtest/gtest.h>

#include "common/random.h"

namespace fglb {
namespace {

ClassLoad Load(uint32_t cls, uint64_t pages, double cpu, double io,
               AppId app = 1) {
  ClassLoad load;
  load.key = MakeClassKey(app, cls);
  load.acceptable_pages = pages;
  load.cpu_rate = cpu;
  load.io_rate = io;
  return load;
}

PlacementConfig SmallConfig() {
  PlacementConfig config;
  config.server_pool_pages = 1000;
  config.cpu_capacity = 4.0;
  config.io_capacity = 1.0;
  config.target_fill = 1.0;  // exact fits for arithmetic tests
  config.memory_fill = 1.0;
  return config;
}

TEST(PlacementOptimizerTest, EmptyInputIsFeasibleAndEmpty) {
  const PlacementPlan plan = ComputePlacement({}, SmallConfig());
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used(), 0);
}

TEST(PlacementOptimizerTest, EverythingFitsOneServer) {
  const PlacementPlan plan = ComputePlacement(
      {Load(1, 300, 0.5, 0.1), Load(2, 300, 0.5, 0.1),
       Load(3, 300, 0.5, 0.1)},
      SmallConfig());
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used(), 1);
}

TEST(PlacementOptimizerTest, MemoryForcesSplit) {
  const PlacementPlan plan = ComputePlacement(
      {Load(1, 700, 0.1, 0.1), Load(2, 700, 0.1, 0.1)}, SmallConfig());
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used(), 2);
  EXPECT_NE(plan.ServerOf(MakeClassKey(1, 1)),
            plan.ServerOf(MakeClassKey(1, 2)));
}

TEST(PlacementOptimizerTest, IoForcesSplitEvenWhenMemoryFits) {
  const PlacementPlan plan = ComputePlacement(
      {Load(1, 100, 0.1, 0.8), Load(2, 100, 0.1, 0.8)}, SmallConfig());
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used(), 2);
}

TEST(PlacementOptimizerTest, CpuDimensionHonored) {
  // Four classes at 1.5 cores each: two per 4-core server.
  const PlacementPlan plan = ComputePlacement(
      {Load(1, 10, 1.5, 0.0), Load(2, 10, 1.5, 0.0),
       Load(3, 10, 1.5, 0.0), Load(4, 10, 1.5, 0.0)},
      SmallConfig());
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used(), 2);
}

TEST(PlacementOptimizerTest, OversizedClassInfeasible) {
  const PlacementPlan plan =
      ComputePlacement({Load(1, 2000, 0.1, 0.1)}, SmallConfig());
  EXPECT_FALSE(plan.feasible);
  EXPECT_EQ(plan.ServerOf(MakeClassKey(1, 1)), -1);
}

TEST(PlacementOptimizerTest, MaxServersBoundsThePlan) {
  PlacementConfig config = SmallConfig();
  config.max_servers = 1;
  const PlacementPlan plan = ComputePlacement(
      {Load(1, 700, 0.1, 0.1), Load(2, 700, 0.1, 0.1)}, config);
  EXPECT_FALSE(plan.feasible);
  EXPECT_EQ(plan.servers_used(), 1);
}

TEST(PlacementOptimizerTest, TargetFillLeavesHeadroom) {
  PlacementConfig config = SmallConfig();
  config.memory_fill = 0.5;
  // 400 + 400 pages would fit a 1000-page server at fill 1.0 but not
  // at 0.5.
  const PlacementPlan plan = ComputePlacement(
      {Load(1, 400, 0.1, 0.1), Load(2, 400, 0.1, 0.1)}, config);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.servers_used(), 2);
}

TEST(PlacementOptimizerTest, PlanCoversEveryFeasibleClassExactlyOnce) {
  Rng rng(11);
  std::vector<ClassLoad> classes;
  for (uint32_t i = 1; i <= 40; ++i) {
    classes.push_back(Load(i, rng.NextUint64(600),
                           rng.NextDouble() * 2.0, rng.NextDouble() * 0.4));
  }
  const PlacementPlan plan = ComputePlacement(classes, SmallConfig());
  std::set<ClassKey> seen;
  for (const auto& server : plan.servers) {
    for (ClassKey key : server) {
      EXPECT_TRUE(seen.insert(key).second) << "class placed twice";
    }
  }
  if (plan.feasible) {
    EXPECT_EQ(seen.size(), classes.size());
  }
}

TEST(PlacementOptimizerTest, CapacityInvariantsHoldPerServer) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ClassLoad> classes;
    for (uint32_t i = 1; i <= 30; ++i) {
      classes.push_back(Load(i, rng.NextUint64(500),
                             rng.NextDouble() * 1.5,
                             rng.NextDouble() * 0.3));
    }
    PlacementConfig config = SmallConfig();
    config.target_fill = 0.8;
    config.memory_fill = 0.8;
    const PlacementPlan plan = ComputePlacement(classes, config);
    for (const auto& server : plan.servers) {
      uint64_t pages = 0;
      double cpu = 0, io = 0;
      for (ClassKey key : server) {
        for (const auto& c : classes) {
          if (c.key == key) {
            pages += c.acceptable_pages;
            cpu += c.cpu_rate;
            io += c.io_rate;
          }
        }
      }
      EXPECT_LE(static_cast<double>(pages),
                config.memory_fill * config.server_pool_pages + 1e-9);
      EXPECT_LE(cpu, config.target_fill * config.cpu_capacity + 1e-9);
      EXPECT_LE(io, config.target_fill * config.io_capacity + 1e-9);
    }
  }
}

}  // namespace
}  // namespace fglb
