// Tests for the ARC buffer pool: hand-traced adaptation behaviour,
// scan resistance vs the CLOCK pool, hit-rate parity with plain LRU on
// reuse-friendly traces, prefetch landing semantics, and the
// ReplacementPolicy name/parse round trip.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/arc_buffer_pool.h"
#include "storage/buffer_pool.h"
#include "storage/clock_buffer_pool.h"
#include "storage/replacement_policy.h"

namespace fglb {
namespace {

PageId P(uint64_t id) { return MakePageId(1, id); }

std::vector<PageId> MakeZipfTrace(uint64_t pages, double theta, size_t n,
                                  uint64_t seed) {
  Rng rng(seed);
  ZipfGenerator zipf(pages, theta);
  std::vector<PageId> trace;
  trace.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    trace.push_back(MakePageId(1, ScrambleToDomain(zipf.Sample(rng), pages)));
  }
  return trace;
}

// A hot set that fits the cache, periodically interrupted by one-shot
// scans over a large cold range. Each round scans a fresh range, so
// scan pages never recur (no ghost hits, no adaptation from them).
// ARC should keep the hot set in T2 across the scans; LRU and CLOCK
// flush it every time.
std::vector<PageId> MakeScanPollutedTrace(uint64_t hot_pages,
                                          uint64_t scan_pages, int rounds,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<PageId> trace;
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < 1500; ++i) {
      trace.push_back(P(rng.NextUint64(hot_pages)));
    }
    for (uint64_t s = 0; s < scan_pages; ++s) {
      trace.push_back(P(1'000'000 + r * scan_pages + s));
    }
  }
  return trace;
}

// --- Basic mechanics ---

TEST(ArcBufferPoolTest, ColdMissesThenHits) {
  ArcBufferPool arc(4);
  EXPECT_FALSE(arc.Access(P(1)));
  EXPECT_FALSE(arc.Access(P(2)));
  EXPECT_TRUE(arc.Access(P(1)));  // promoted T1 -> T2
  EXPECT_TRUE(arc.Access(P(2)));
  EXPECT_EQ(arc.stats().accesses, 4u);
  EXPECT_EQ(arc.stats().hits, 2u);
  EXPECT_EQ(arc.stats().misses, 2u);
  EXPECT_EQ(arc.resident_pages(), 2u);
  EXPECT_TRUE(arc.Contains(P(1)));
  EXPECT_FALSE(arc.Contains(P(3)));
}

TEST(ArcBufferPoolTest, ResidencyNeverExceedsCapacity) {
  ArcBufferPool arc(8);
  const std::vector<PageId> trace = MakeZipfTrace(200, 0.7, 5000, 11);
  for (PageId p : trace) {
    arc.Access(p);
    ASSERT_LE(arc.resident_pages(), arc.capacity());
    ASSERT_LE(arc.target_t1(), arc.capacity());
  }
  EXPECT_EQ(arc.resident_pages(), arc.capacity());  // zipf set >> capacity
}

TEST(ArcBufferPoolTest, ZeroCapacityPoolMissesEverything) {
  ArcBufferPool arc(0);
  EXPECT_FALSE(arc.Access(P(1)));
  EXPECT_FALSE(arc.Access(P(1)));
  EXPECT_FALSE(arc.Insert(P(2)));
  EXPECT_EQ(arc.resident_pages(), 0u);
  EXPECT_EQ(arc.stats().misses, 2u);
}

TEST(ArcBufferPoolTest, CaseIvAWithEmptyB1DropsT1LruWithoutGhost) {
  // Cold-fill T1 to capacity, then one more cold miss: the paper's
  // Case IV(a) with B1 empty deletes T1's LRU page outright — no ghost
  // entry, so re-touching it later is a plain miss that does not adapt.
  ArcBufferPool arc(4);
  for (uint64_t i = 1; i <= 5; ++i) arc.Access(P(i));
  EXPECT_FALSE(arc.Contains(P(1)));
  EXPECT_FALSE(arc.Access(P(1)));
  EXPECT_EQ(arc.target_t1(), 0u);  // no B1 ghost hit happened
}

TEST(ArcBufferPoolTest, GhostHitInB1GrowsRecencyTarget) {
  // Build: 1..4 cold into T1, promote 1 to T2 (hit), then a cold miss
  // replaces T1's LRU (page 2) into ghost B1. Touching 2 again is a
  // B1 ghost hit: ARC must adapt p upward (favouring recency) and
  // bring the page back into the frequency list T2.
  ArcBufferPool arc(4);
  for (uint64_t i = 1; i <= 4; ++i) arc.Access(P(i));
  EXPECT_TRUE(arc.Access(P(1)));     // 1 -> T2; T1 = {4,3,2}
  EXPECT_FALSE(arc.Access(P(5)));    // replace: 2 -> B1
  EXPECT_FALSE(arc.Contains(P(2)));
  EXPECT_EQ(arc.target_t1(), 0u);
  EXPECT_FALSE(arc.Access(P(2)));    // ghost hit: a miss, but adaptive
  EXPECT_GT(arc.target_t1(), 0u);
  EXPECT_TRUE(arc.Contains(P(2)));   // reloaded into T2
  EXPECT_TRUE(arc.Access(P(2)));
}

TEST(ArcBufferPoolTest, InsertLandsColdAndIsFirstEvicted) {
  ArcBufferPool arc(3);
  EXPECT_TRUE(arc.Insert(P(1)));
  EXPECT_FALSE(arc.Insert(P(1)));  // already resident
  EXPECT_TRUE(arc.Contains(P(1)));
  EXPECT_EQ(arc.stats().prefetch_inserts, 1u);
  EXPECT_EQ(arc.stats().accesses, 0u);  // Insert is not an access
  // Fill the pool with demand pages; the unused prefetched page must
  // be the first to go even though it arrived earliest -> last in LRU
  // order would keep it; cold landing evicts it.
  arc.Access(P(2));
  arc.Access(P(3));
  arc.Access(P(4));
  EXPECT_FALSE(arc.Contains(P(1)));
  EXPECT_TRUE(arc.Contains(P(2)));
  EXPECT_TRUE(arc.Contains(P(3)));
  EXPECT_TRUE(arc.Contains(P(4)));
}

TEST(ArcBufferPoolTest, PrefetchedPageSurvivesWhenUsed) {
  ArcBufferPool arc(3);
  ASSERT_TRUE(arc.Insert(P(1)));
  EXPECT_TRUE(arc.Access(P(1)));  // a real use refreshes it
  arc.Access(P(2));
  arc.Access(P(3));
  arc.Access(P(4));
  EXPECT_TRUE(arc.Contains(P(1)));  // promoted to T2, not first victim
}

// --- Scan resistance ---

TEST(ArcBufferPoolTest, SurvivesScansThatFlushClock) {
  const uint64_t kCache = 512;
  const std::vector<PageId> trace =
      MakeScanPollutedTrace(/*hot_pages=*/400, /*scan_pages=*/1024,
                            /*rounds=*/8, /*seed=*/21);
  ArcBufferPool arc(kCache);
  ClockBufferPool clock(kCache);
  BufferPool lru(kCache);
  for (PageId p : trace) {
    arc.Access(p);
    clock.Access(p);
    lru.Access(p);
  }
  // The hot set (400 pages) fits the 512-page cache, but every scan
  // round pushes 1024 never-reused cold pages through. LRU/CLOCK evict
  // the hot set each round and re-miss it; ARC parks the scan in T1
  // and keeps the hot pages in T2.
  EXPECT_GT(arc.stats().hit_ratio(), lru.stats().hit_ratio() + 0.10);
  EXPECT_GT(arc.stats().hit_ratio(), clock.stats().hit_ratio() + 0.10);
}

// --- LRU parity on reuse-friendly traces ---

TEST(ArcBufferPoolTest, CloseToLruOnSkewedTraces) {
  for (const uint64_t seed : {31u, 37u}) {
    const std::vector<PageId> trace = MakeZipfTrace(2000, 0.9, 40000, seed);
    for (const uint64_t cache : {256u, 1024u}) {
      ArcBufferPool arc(cache);
      BufferPool lru(cache);
      for (PageId p : trace) {
        arc.Access(p);
        lru.Access(p);
      }
      // On scan-free skewed traffic ARC should behave like (or better
      // than) LRU, not pathologically worse.
      EXPECT_GE(arc.stats().hit_ratio(), lru.stats().hit_ratio() - 0.03)
          << "seed " << seed << " cache " << cache;
    }
  }
}

// --- Policy round trip ---

TEST(ReplacementPolicyTest, NameParseRoundTrip) {
  for (const ReplacementPolicy policy :
       {ReplacementPolicy::kLru, ReplacementPolicy::kClock,
        ReplacementPolicy::kArc}) {
    ReplacementPolicy parsed;
    ASSERT_TRUE(ParseReplacementPolicy(ReplacementPolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  EXPECT_STREQ(ReplacementPolicyName(ReplacementPolicy::kArc), "arc");
  ReplacementPolicy unused;
  EXPECT_FALSE(ParseReplacementPolicy("fifo", &unused));
  EXPECT_FALSE(ParseReplacementPolicy("", &unused));
  EXPECT_FALSE(ParseReplacementPolicy("LRU", &unused));
}

}  // namespace
}  // namespace fglb
