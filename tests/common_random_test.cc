#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace fglb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(RngTest, NextUint64InRange) {
  Rng rng(7);
  for (uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextUint64(n), n);
  }
}

TEST(RngTest, NextUint64CoversSmallDomain) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextUint64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(9);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngTest, NormalMeanAndSpread) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::map<size_t, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(ZipfTest, SamplesWithinDomain) {
  Rng rng(23);
  ZipfGenerator zipf(1000, 0.99);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.Sample(rng), 1000u);
}

TEST(ZipfTest, RankZeroMostPopular) {
  Rng rng(29);
  ZipfGenerator zipf(10000, 1.1);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  // Rank 0 should dominate rank 100 which dominates rank 5000.
  EXPECT_GT(counts[0], counts[100]);
  EXPECT_GT(counts[100], counts[5000]);
}

TEST(ZipfTest, ThetaZeroIsRoughlyUniform) {
  Rng rng(31);
  ZipfGenerator zipf(10, 0.0);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(count / static_cast<double>(n), 0.1, 0.02)
        << "value " << value;
  }
}

TEST(ZipfTest, SkewMatchesTheory) {
  // With theta close to 1 the top rank's share over n items is about
  // 1 / H_n; check order of magnitude.
  Rng rng(37);
  const uint64_t n = 1000;
  ZipfGenerator zipf(n, 0.99);
  int top = 0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) top += (zipf.Sample(rng) == 0);
  const double share = static_cast<double>(top) / samples;
  EXPECT_GT(share, 0.08);
  EXPECT_LT(share, 0.20);
}

TEST(ZipfTest, SingleElementDomain) {
  Rng rng(41);
  ZipfGenerator zipf(1, 0.9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ScrambleTest, BijectiveOnSmallDomains) {
  for (uint64_t n : {1ULL, 2ULL, 7ULL, 64ULL, 100ULL, 1000ULL}) {
    std::set<uint64_t> images;
    for (uint64_t v = 0; v < n; ++v) {
      const uint64_t image = ScrambleToDomain(v, n);
      EXPECT_LT(image, n);
      images.insert(image);
    }
    EXPECT_EQ(images.size(), n) << "n=" << n;
  }
}

TEST(ScrambleTest, DeterministicMapping) {
  for (uint64_t v = 0; v < 50; ++v) {
    EXPECT_EQ(ScrambleToDomain(v, 977), ScrambleToDomain(v, 977));
  }
}

TEST(ScrambleTest, SpreadsNeighbours) {
  // Consecutive inputs should not map to consecutive outputs (that is
  // the whole point: hot ranks spread over the region).
  const uint64_t n = 100000;
  int adjacent = 0;
  for (uint64_t v = 0; v + 1 < 200; ++v) {
    const uint64_t a = ScrambleToDomain(v, n);
    const uint64_t b = ScrambleToDomain(v + 1, n);
    if (a + 1 == b || b + 1 == a) ++adjacent;
  }
  EXPECT_LT(adjacent, 5);
}

}  // namespace
}  // namespace fglb
