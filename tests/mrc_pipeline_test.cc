// Tests for the parallel, sampled, copy-free MRC analysis pipeline:
// ThreadPool semantics, sampled-vs-exact MRC parameter agreement, the
// Fenwick scratch/presize paths, and determinism of the parallel
// DiagnoseMemory fan-out against a serial pass.

#include <atomic>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/log_analyzer.h"
#include "engine/database_engine.h"
#include "mrc/miss_ratio_curve.h"
#include "mrc/mrc_tracker.h"
#include "mrc/sampled_mattson_stack.h"
#include "storage/disk_model.h"

namespace fglb {
namespace {

std::vector<PageId> MakeZipfTrace(uint64_t pages, double theta, size_t n,
                                  uint64_t seed) {
  Rng rng(seed);
  ZipfGenerator zipf(pages, theta);
  std::vector<PageId> trace;
  trace.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    trace.push_back(MakePageId(1, ScrambleToDomain(zipf.Sample(rng), pages)));
  }
  return trace;
}

// Sequential scan of `region` pages, repeated.
std::vector<PageId> MakeScanTrace(uint64_t region, int repetitions) {
  std::vector<PageId> trace;
  trace.reserve(region * repetitions);
  for (int r = 0; r < repetitions; ++r) {
    for (uint64_t i = 0; i < region; ++i) trace.push_back(MakePageId(2, i));
  }
  return trace;
}

// A loop alternating between a hot set and periodic wide sweeps.
std::vector<PageId> MakeLoopingTrace(uint64_t hot, uint64_t wide,
                                     size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<PageId> trace;
  trace.reserve(n);
  uint64_t sweep_pos = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i % 8 == 0) {
      trace.push_back(MakePageId(3, hot + (sweep_pos++ % wide)));
    } else {
      trace.push_back(MakePageId(3, rng.NextUint64(hot)));
    }
  }
  return trace;
}

// --- ThreadPool ---

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int expected = 0;
  for (int i = 0; i < 100; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  auto f = pool.Submit([caller] { return std::this_thread::get_id() == caller; });
  EXPECT_TRUE(f.get());
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> counts(997);
    pool.ParallelFor(counts.size(),
                     [&counts](size_t i) { counts[i].fetch_add(1); });
    for (size_t i = 0; i < counts.size(); ++i) {
      ASSERT_EQ(counts[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads";
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(4);
  int zero_calls = 0;
  pool.ParallelFor(0, [&zero_calls](size_t) { ++zero_calls; });
  EXPECT_EQ(zero_calls, 0);
  std::atomic<int> one_calls{0};
  pool.ParallelFor(1, [&one_calls](size_t) { one_calls.fetch_add(1); });
  EXPECT_EQ(one_calls.load(), 1);
}

// --- SampledMattsonStack ---

TEST(SampledMattsonStackTest, FullRateMatchesExactFenwick) {
  const auto trace = MakeZipfTrace(500, 0.8, 20000, 7);
  SampledMattsonStack sampled(1.0);
  FenwickMattsonStack exact;
  for (PageId p : trace) {
    ASSERT_EQ(sampled.Access(p), exact.Access(p));
  }
  EXPECT_EQ(sampled.hit_counts(), exact.hit_counts());
  EXPECT_EQ(sampled.cold_misses(), exact.cold_misses());
  EXPECT_EQ(sampled.total_accesses(), exact.total_accesses());
  EXPECT_EQ(sampled.scale(), 1u);
}

TEST(SampledMattsonStackTest, ReplaysOnlyTheSample) {
  const auto trace = MakeZipfTrace(4000, 0.6, 50000, 11);
  SampledMattsonStack sampled(1.0 / 8);
  for (PageId p : trace) sampled.Access(p);
  EXPECT_EQ(sampled.scale(), 8u);
  EXPECT_EQ(sampled.total_accesses(), trace.size());
  // The sampled share is ~1/8 of references (hash-dependent; generous
  // envelope so the test pins the cost saving, not the exact hash).
  EXPECT_LT(sampled.sampled_accesses(), trace.size() / 4);
  EXPECT_GT(sampled.sampled_accesses(), trace.size() / 32);
}

TEST(SampledMattsonStackTest, ResetMatchesFreshInstance) {
  const auto first = MakeZipfTrace(300, 0.9, 10000, 13);
  const auto second = MakeZipfTrace(700, 0.5, 10000, 17);
  SampledMattsonStack reused(1.0 / 4);
  for (PageId p : first) reused.Access(p);
  reused.Reset();
  for (PageId p : second) reused.Access(p);
  SampledMattsonStack fresh(1.0 / 4);
  for (PageId p : second) fresh.Access(p);
  EXPECT_EQ(reused.hit_counts(), fresh.hit_counts());
  EXPECT_EQ(reused.cold_misses(), fresh.cold_misses());
  EXPECT_EQ(reused.total_accesses(), fresh.total_accesses());
}

// Accuracy bound: MRC parameters derived from a 1/8-sampled replay
// agree with the exact list-oracle parameters within a tolerance much
// tighter than MrcConfig::significant_change_fraction (0.5), so
// sampling cannot flip a diagnosis verdict on these shapes.
class SampledAccuracyTest
    : public ::testing::TestWithParam<std::vector<PageId> (*)()> {};

std::vector<PageId> SkewedTrace() {
  return MakeZipfTrace(4000, 0.9, 80000, 21);
}
std::vector<PageId> SequentialTrace() { return MakeScanTrace(3000, 25); }
std::vector<PageId> LoopingTrace() {
  return MakeLoopingTrace(2000, 4000, 80000, 29);
}

TEST_P(SampledAccuracyTest, ParametersWithinTolerance) {
  const std::vector<PageId> trace = GetParam()();
  MrcConfig config;
  config.max_server_pages = 16384;

  const MissRatioCurve exact_curve =
      MissRatioCurve::FromTrace(trace, MattsonImpl::kList);
  const MrcParameters exact = exact_curve.ComputeParameters(config);

  MrcConfig sampled_config = config;
  sampled_config.sample_rate = 1.0 / 8;
  const MissRatioCurve sampled_curve = MissRatioCurve::FromTrace(
      SpanPair<PageId>(std::span<const PageId>(trace)), sampled_config);
  const MrcParameters sampled = sampled_curve.ComputeParameters(config);

  const auto within = [](uint64_t exact_v, uint64_t sampled_v,
                         double tolerance) {
    const double e = static_cast<double>(exact_v);
    const double s = static_cast<double>(sampled_v);
    return std::abs(s - e) <= tolerance * e + 64.0;
  };
  EXPECT_TRUE(within(exact.total_memory_pages, sampled.total_memory_pages,
                     0.15))
      << "total: exact " << exact.total_memory_pages << " sampled "
      << sampled.total_memory_pages;
  EXPECT_TRUE(within(exact.acceptable_memory_pages,
                     sampled.acceptable_memory_pages, 0.15))
      << "acceptable: exact " << exact.acceptable_memory_pages << " sampled "
      << sampled.acceptable_memory_pages;
  EXPECT_NEAR(sampled.ideal_miss_ratio, exact.ideal_miss_ratio, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Traces, SampledAccuracyTest,
                         ::testing::Values(&SkewedTrace, &SequentialTrace,
                                           &LoopingTrace));

// --- Fenwick presize / scratch reuse ---

TEST(FenwickPresizeTest, PresizedMatchesGrownAndNeverRebuilds) {
  const auto trace = MakeZipfTrace(20000, 0.2, 30000, 31);
  FenwickMattsonStack grown;
  FenwickMattsonStack presized(trace.size());
  for (PageId p : trace) {
    ASSERT_EQ(grown.Access(p), presized.Access(p));
  }
  EXPECT_EQ(grown.hit_counts(), presized.hit_counts());
  EXPECT_GT(grown.capacity_rebuilds(), 0u);
  EXPECT_EQ(presized.capacity_rebuilds(), 0u);
}

TEST(FenwickPresizeTest, ResetReusesCapacity) {
  const auto trace = MakeZipfTrace(5000, 0.4, 20000, 37);
  FenwickMattsonStack stack(trace.size());
  for (PageId p : trace) stack.Access(p);
  stack.Reset();
  EXPECT_EQ(stack.total_accesses(), 0u);
  EXPECT_EQ(stack.distinct_pages(), 0u);
  FenwickMattsonStack fresh(trace.size());
  for (PageId p : trace) {
    ASSERT_EQ(stack.Access(p), fresh.Access(p));
  }
  EXPECT_EQ(stack.capacity_rebuilds(), 0u);
}

// --- Copy-free tracker input ---

TEST(MrcTrackerSpansTest, TwoSpanInputMatchesContiguous) {
  const auto trace = MakeZipfTrace(800, 0.8, 24000, 41);
  MrcConfig config;
  MrcTracker contiguous(config);
  MrcTracker split(config);
  contiguous.SetStableFromTrace(std::span<const PageId>(trace));
  // The same logical trace presented as a wrapped ring would be.
  const size_t cut = trace.size() / 3 + 7;
  const SpanPair<PageId> view(
      std::span<const PageId>(trace.data(), cut),
      std::span<const PageId>(trace.data() + cut, trace.size() - cut));
  split.SetStableFromTrace(view);
  ASSERT_TRUE(contiguous.has_stable());
  ASSERT_TRUE(split.has_stable());
  EXPECT_EQ(contiguous.stable_params().total_memory_pages,
            split.stable_params().total_memory_pages);
  EXPECT_EQ(contiguous.stable_params().acceptable_memory_pages,
            split.stable_params().acceptable_memory_pages);

  const auto longer = MakeZipfTrace(800, 0.8, 30000, 43);
  const auto rec_a = contiguous.Recompute(std::span<const PageId>(longer));
  const size_t cut2 = longer.size() / 2 + 11;
  const auto rec_b = split.Recompute(SpanPair<PageId>(
      std::span<const PageId>(longer.data(), cut2),
      std::span<const PageId>(longer.data() + cut2, longer.size() - cut2)));
  EXPECT_EQ(rec_a.params.total_memory_pages, rec_b.params.total_memory_pages);
  EXPECT_EQ(rec_a.params.acceptable_memory_pages,
            rec_b.params.acceptable_memory_pages);
  EXPECT_EQ(rec_a.suspect, rec_b.suspect);
}

// --- Parallel DiagnoseMemory determinism ---

class ParallelDiagnosisTest : public ::testing::Test {
 protected:
  static constexpr int kClasses = 6;
  static constexpr size_t kWindow = 6000;

  void FillEngine(DatabaseEngine* engine) {
    for (int c = 0; c < kClasses; ++c) {
      const ClassKey key = MakeClassKey(1, static_cast<uint32_t>(c + 1));
      Rng rng(500 + c);
      ZipfGenerator zipf(600 + 100 * c, 0.8);
      for (size_t i = 0; i < kWindow; ++i) {
        engine->stats().RecordPageAccess(
            key, MakePageId(static_cast<uint32_t>(c + 1),
                            ScrambleToDomain(zipf.Sample(rng),
                                             600 + 100 * c)));
      }
    }
  }

  std::set<ClassKey> Candidates() const {
    std::set<ClassKey> keys;
    for (int c = 0; c < kClasses; ++c) {
      keys.insert(MakeClassKey(1, static_cast<uint32_t>(c + 1)));
    }
    return keys;
  }

  static void ExpectIdentical(const LogAnalyzer::MemoryDiagnosis& a,
                              const LogAnalyzer::MemoryDiagnosis& b) {
    const auto same_profiles =
        [](const std::vector<ClassMemoryProfile>& x,
           const std::vector<ClassMemoryProfile>& y) {
          ASSERT_EQ(x.size(), y.size());
          for (size_t i = 0; i < x.size(); ++i) {
            EXPECT_EQ(x[i].key, y[i].key);
            EXPECT_EQ(x[i].params.total_memory_pages,
                      y[i].params.total_memory_pages);
            EXPECT_EQ(x[i].params.acceptable_memory_pages,
                      y[i].params.acceptable_memory_pages);
            EXPECT_EQ(x[i].params.ideal_miss_ratio,
                      y[i].params.ideal_miss_ratio);
            EXPECT_EQ(x[i].params.acceptable_miss_ratio,
                      y[i].params.acceptable_miss_ratio);
          }
        };
    same_profiles(a.suspects, b.suspects);
    same_profiles(a.cleared, b.cleared);
    EXPECT_EQ(a.insufficient_data, b.insufficient_data);
  }

  void RunDeterminismCheck(double sample_rate) {
    DiskModel disk;
    DatabaseEngine::Options options;
    options.access_window_capacity = kWindow;
    DatabaseEngine serial_engine("serial", options, &disk);
    DatabaseEngine parallel_engine("parallel", options, &disk);
    FillEngine(&serial_engine);
    FillEngine(&parallel_engine);

    MrcConfig serial_config;
    serial_config.analysis_threads = 1;
    serial_config.sample_rate = sample_rate;
    MrcConfig parallel_config = serial_config;
    parallel_config.analysis_threads = 4;

    LogAnalyzer serial(&serial_engine, OutlierConfig{}, serial_config);
    LogAnalyzer parallel(&parallel_engine, OutlierConfig{}, parallel_config);

    // First pass: no baselines, every class is a fresh suspect.
    const auto serial_first = serial.DiagnoseMemory(Candidates());
    const auto parallel_first = parallel.DiagnoseMemory(Candidates());
    EXPECT_EQ(serial_first.suspects.size(), static_cast<size_t>(kClasses));
    ExpectIdentical(serial_first, parallel_first);

    // Adopt baselines, rediagnose: identical cleared verdicts too.
    for (const auto& p : serial_first.suspects) {
      serial.AdoptRecomputation(p.key);
    }
    for (const auto& p : parallel_first.suspects) {
      parallel.AdoptRecomputation(p.key);
    }
    const auto serial_second = serial.DiagnoseMemory(Candidates());
    const auto parallel_second = parallel.DiagnoseMemory(Candidates());
    EXPECT_EQ(serial_second.cleared.size(), static_cast<size_t>(kClasses));
    ExpectIdentical(serial_second, parallel_second);
  }
};

TEST_F(ParallelDiagnosisTest, ExactReplayIsDeterministic) {
  RunDeterminismCheck(1.0);
}

TEST_F(ParallelDiagnosisTest, SampledReplayIsDeterministic) {
  RunDeterminismCheck(1.0 / 8);
}

TEST_F(ParallelDiagnosisTest, InsufficientDataStillReported) {
  DiskModel disk;
  DatabaseEngine::Options options;
  options.access_window_capacity = kWindow;
  DatabaseEngine engine("tiny", options, &disk);
  const ClassKey thin = MakeClassKey(1, 99);
  for (int i = 0; i < 10; ++i) {
    engine.stats().RecordPageAccess(thin, MakePageId(9, i));
  }
  MrcConfig config;
  config.analysis_threads = 4;
  LogAnalyzer analyzer(&engine, OutlierConfig{}, config);
  const auto diagnosis = analyzer.DiagnoseMemory({thin});
  EXPECT_TRUE(diagnosis.suspects.empty());
  EXPECT_TRUE(diagnosis.cleared.empty());
  EXPECT_EQ(diagnosis.insufficient_data, std::vector<ClassKey>{thin});
}

}  // namespace
}  // namespace fglb
