#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/json.h"
#include "common/random.h"
#include "engine/stats_collector.h"
#include "mrc/miss_ratio_curve.h"
#include "scenarios/harness.h"
#include "sim/queue_resource.h"
#include "sim/simulator.h"
#include "storage/partitioned_buffer_pool.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

// Cross-module edge cases that do not fit the per-module suites.

TEST(SimEdgeTest, SubmitFromCompletionCallback) {
  Simulator sim;
  QueueResource q(&sim, 1, "disk");
  int completions = 0;
  std::function<void(double)> chain = [&](double) {
    ++completions;
    if (completions < 5) q.Submit(1.0, chain);
  };
  q.Submit(1.0, chain);
  sim.RunToCompletion();
  EXPECT_EQ(completions, 5);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
}

TEST(SimEdgeTest, RunUntilIncludesBoundaryEvent) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(10.0, [&] { fired = true; });
  sim.RunUntil(10.0);
  EXPECT_TRUE(fired);
}

TEST(SimEdgeTest, ManyTinyJobsAllComplete) {
  Simulator sim;
  QueueResource q(&sim, 3, "cpu");
  int done = 0;
  for (int i = 0; i < 10000; ++i) {
    q.Submit(0.001, [&](double) { ++done; });
  }
  sim.RunToCompletion();
  EXPECT_EQ(done, 10000);
  EXPECT_NEAR(sim.Now(), 10.0 / 3.0, 0.01);
}

TEST(HistogramEdgeTest, PercentileExtremes) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i * 0.01);
  EXPECT_NEAR(h.Percentile(0), 0.01, 0.02);
  EXPECT_NEAR(h.Percentile(100), 1.0, 0.05);
  EXPECT_DOUBLE_EQ(Histogram().Percentile(50), 0.0);
}

TEST(RngEdgeTest, DiscreteSingleElement) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.Discrete({42.0}), 0u);
  }
}

TEST(RngEdgeTest, ZipfThetaExactlyOne) {
  // theta = 1 hits the (1 - theta) = 0 stability branch of the
  // Hormann helpers.
  Rng rng(2);
  ZipfGenerator zipf(1000, 1.0);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = zipf.Sample(rng);
    ASSERT_LT(v, 1000u);
    ++counts[v];
  }
  EXPECT_GT(counts[0], counts[100]);
}

TEST(MrcEdgeTest, ParametersOfEmptyCurve) {
  const MissRatioCurve curve;
  MrcConfig config;
  const MrcParameters params = curve.ComputeParameters(config);
  // An empty curve is flat at 1.0 everywhere: nothing is needed.
  EXPECT_EQ(params.total_memory_pages, 0u);
  EXPECT_EQ(params.acceptable_memory_pages, 0u);
  EXPECT_DOUBLE_EQ(params.ideal_miss_ratio, 1.0);
}

TEST(MrcEdgeTest, ThresholdZeroMeansAcceptableEqualsTotal) {
  std::vector<PageId> trace;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    trace.push_back(MakePageId(1, rng.NextUint64(200)));
  }
  const MissRatioCurve curve = MissRatioCurve::FromTrace(trace);
  MrcConfig config;
  config.acceptable_threshold = 0.0;
  const MrcParameters params = curve.ComputeParameters(config);
  // With no slack, the first size achieving the ideal ratio is the
  // total need itself (or an earlier size with the same ratio).
  EXPECT_DOUBLE_EQ(params.acceptable_miss_ratio, params.ideal_miss_ratio);
  EXPECT_LE(params.acceptable_memory_pages, params.total_memory_pages);
}

TEST(PartitionedPoolEdgeTest, QuotaConsumingWholePool) {
  PartitionedBufferPool pool(64);
  ASSERT_TRUE(pool.SetQuota(1, 64));
  EXPECT_EQ(pool.shared_capacity(), 0u);
  // Shared-region users now miss everything and cache nothing.
  EXPECT_FALSE(pool.Access(2, MakePageId(1, 1)));
  EXPECT_FALSE(pool.Access(2, MakePageId(1, 1)));
  // The dedicated partition still works.
  pool.Access(1, MakePageId(1, 9));
  EXPECT_TRUE(pool.Access(1, MakePageId(1, 9)));
  // Releasing the quota restores the shared region.
  pool.DropQuota(1);
  EXPECT_EQ(pool.shared_capacity(), 64u);
  pool.Access(2, MakePageId(1, 1));
  EXPECT_TRUE(pool.Access(2, MakePageId(1, 1)));
}

TEST(PartitionedPoolEdgeTest, ManyDedicatedPartitions) {
  PartitionedBufferPool pool(1024);
  for (PartitionKey key = 1; key <= 16; ++key) {
    ASSERT_TRUE(pool.SetQuota(key, 32));
  }
  EXPECT_EQ(pool.dedicated_total(), 512u);
  EXPECT_EQ(pool.shared_capacity(), 512u);
  EXPECT_EQ(pool.DedicatedKeys().size(), 16u);
  for (PartitionKey key = 1; key <= 16; ++key) {
    pool.Access(key, MakePageId(2, key));
    EXPECT_TRUE(pool.Access(key, MakePageId(2, key)));
  }
}

TEST(StatsDropoutEdgeTest, DroppedIntervalsAreLostNotDeferred) {
  StatsCollector stats;
  ExecutionCounters counters;
  counters.page_accesses = 10;
  stats.RecordQuery(MakeClassKey(1, 1), 0.1, counters);
  stats.set_dropout(StatsDropout::kDropAll);
  EXPECT_TRUE(stats.EndInterval(10.0).empty());
  // Restoring the collector must not replay the dropped interval's
  // accumulators into the next one.
  stats.set_dropout(StatsDropout::kNone);
  EXPECT_TRUE(stats.EndInterval(10.0).empty());
}

TEST(StatsDropoutEdgeTest, PartialDropoutReportsSubsetOfClasses) {
  StatsCollector stats;
  ExecutionCounters counters;
  counters.page_accesses = 10;
  for (QueryClassId cls = 1; cls <= 8; ++cls) {
    stats.RecordQuery(MakeClassKey(1, cls), 0.1, counters);
  }
  stats.set_dropout(StatsDropout::kPartial);
  const auto snap = stats.EndInterval(10.0);
  EXPECT_GT(snap.size(), 0u);
  EXPECT_LT(snap.size(), 8u);
}

TEST(ControllerEdgeTest, StatsDropoutSkipsCascadeWithReason) {
  // A violating application whose stats collector is fully dropped out:
  // the controller cannot reason about classes, so it must skip the
  // fine-grained cascade with reason "no_stats" instead of acting on
  // nothing (or crashing into the coarse fallback).
  ClusterHarness h;
  h.trace().EnableBuffering();
  h.AddServers(1);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.AddConstantClients(tpcw, 900, /*seed=*/13);  // beyond one server
  r->engine().set_stats_dropout(StatsDropout::kDropAll);
  h.Start();
  h.RunFor(200);

  EXPECT_GT(h.metrics().counter("controller.skipped.no_stats")->value(), 0u);
  // Without statistics no fine-grained action is possible; the only
  // permissible decisions are replica-level provisioning/release.
  for (const auto& action : h.retuner().actions()) {
    EXPECT_TRUE(
        action.kind == SelectiveRetuner::ActionKind::kCpuProvision ||
        action.kind == SelectiveRetuner::ActionKind::kIoProvision ||
        action.kind == SelectiveRetuner::ActionKind::kCpuRelease)
        << SelectiveRetuner::ActionKindName(action.kind);
  }
  // The skip reason is visible in the decision trace.
  bool saw_no_stats = false;
  for (const std::string& line : h.trace().BufferedLines()) {
    JsonValue event;
    std::string error;
    ASSERT_TRUE(JsonValue::Parse(line, &event, &error)) << error;
    if (event.StringOr("phase", "") == "action" &&
        event.StringOr("why", "") == "no_stats") {
      saw_no_stats = true;
      break;
    }
  }
  EXPECT_TRUE(saw_no_stats);
}

}  // namespace
}  // namespace fglb
