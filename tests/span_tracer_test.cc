// Span tracer invariants: the recorded segments of every sampled query
// partition its measured end-to-end latency (residual < 1%), sampling
// is deterministic (two identical runs export byte-identical span
// JSON, and a replayed capture reproduces the live run's span file),
// and the whole layer is a null-check no-op when not enabled.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/span_tracer.h"
#include "replay/capture.h"
#include "replay/replayer.h"
#include "scenarios/harness.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Consolidation-style interference scenario (TPC-W steady, RUBiS
// stepping in) so spans cover the full pipeline: disk waits, CPU
// waits, lock waits, and — under pressure — shed/penalty fast-fails.
void AssembleConsolidation(ClusterHarness* harness, double duration,
                           uint64_t seed) {
  harness->AddServers(4);
  PhysicalServer* first = harness->resources().servers()[0].get();
  Scheduler* tpcw = harness->AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = harness->AddApplication(MakeRubis(rubis_options));
  Replica* shared = harness->resources().CreateReplica(first, 8192);
  tpcw->AddReplica(shared);
  rubis->AddReplica(shared);
  harness->AddConstantClients(tpcw, 120, seed);
  harness->AddClients(
      rubis,
      std::make_unique<StepLoad>(
          std::vector<std::pair<SimTime, double>>{{duration / 3, 45}}),
      seed + 1);
}

TEST(SpanConfigTest, RoundTripsThroughString) {
  SpanConfig config;
  config.sample_every = 17;
  const std::string text = config.ToString();
  EXPECT_EQ(text, "sample=17");
  SpanConfig parsed;
  std::string error;
  ASSERT_TRUE(SpanConfig::Parse(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.sample_every, 17u);
}

TEST(SpanConfigTest, RejectsMalformedSpecs) {
  SpanConfig parsed;
  std::string error;
  EXPECT_FALSE(SpanConfig::Parse("sample=0", &parsed, &error));
  EXPECT_FALSE(SpanConfig::Parse("sample=abc", &parsed, &error));
  EXPECT_FALSE(SpanConfig::Parse("bogus=1", &parsed, &error));
  EXPECT_FALSE(SpanConfig::Parse("sample", &parsed, &error));
}

TEST(SpanTracerTest, SegmentsPartitionMeasuredLatency) {
  // Sample every query; every finished span's segment sum must equal
  // its measured end-to-end latency to within 1% (the acceptance bound;
  // the construction is exact up to FP rounding).
  SpanConfig config;
  config.sample_every = 1;
  ClusterHarness harness;
  AssembleConsolidation(&harness, 200, /*seed=*/1);
  SpanTracer* spans = harness.EnableSpanTracing(config);
  ASSERT_NE(spans, nullptr);

  uint64_t observed = 0;
  double worst_residual_share = 0;
  spans->SetFinishObserver(
      [&](const QuerySpan& span, double end_to_end) {
        ++observed;
        const double residual = std::abs(span.SegmentSum() - end_to_end);
        const double share =
            end_to_end > 0 ? residual / end_to_end : residual;
        if (share > worst_residual_share) worst_residual_share = share;
      });
  harness.Start();
  harness.RunFor(200);

  EXPECT_GT(observed, 1000u);
  EXPECT_EQ(observed, spans->finished());
  EXPECT_EQ(spans->sampled(), spans->sequence());
  EXPECT_LT(worst_residual_share, 0.01);
}

TEST(SpanTracerTest, WaitProfileAggregatesIntoRegistry) {
  SpanConfig config;
  config.sample_every = 8;
  ClusterHarness harness;
  AssembleConsolidation(&harness, 150, /*seed=*/2);
  SpanTracer* spans = harness.EnableSpanTracing(config);
  harness.Start();
  harness.RunFor(150);

  ASSERT_GT(spans->finished(), 0u);
  // 1-in-8 deterministic sampling by submit sequence.
  EXPECT_EQ(spans->sampled(), (spans->sequence() + 7) / 8);

  // The aggregate histograms live in the harness registry under the
  // span.* namespace.
  JsonValue root;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(harness.metrics().ToJson(), &root, &error))
      << error;
  const JsonValue* histograms = root.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  // Every class registers its full segment family eagerly (so the
  // profile shape is stable); only exercised segments accumulate.
  bool span_series = false;
  double span_samples = 0;
  for (const auto& [name, value] : histograms->object) {
    if (name.rfind("span.", 0) != 0) continue;
    span_series = true;
    span_samples += value.NumberOr("count", 0);
    EXPECT_GE(value.NumberOr("sum_us", -1), 0) << name;
    EXPECT_NE(value.Find("p99_us"), nullptr) << name;
  }
  EXPECT_TRUE(span_series);
  EXPECT_GT(span_samples, 0);

  // The per-app wait profile is valid JSON with per-class breakdowns.
  JsonValue profile;
  ASSERT_TRUE(JsonValue::Parse(spans->WaitProfileJson(1), &profile, &error))
      << error;
  ASSERT_TRUE(profile.is_array());
  ASSERT_FALSE(profile.array.empty());
  for (const JsonValue& cls : profile.array) {
    EXPECT_DOUBLE_EQ(cls.NumberOr("app", -1), 1);
    EXPECT_GT(cls.NumberOr("sampled", 0), 0);
    EXPECT_NE(cls.Find("end_to_end"), nullptr);
    const JsonValue* segments = cls.Find("segments");
    ASSERT_NE(segments, nullptr);
    EXPECT_TRUE(segments->is_array());
  }
}

// Cohort mode exercises the batched client emulator — sampling is by
// the scheduler's global submit sequence, so it must stay 1-in-N and
// byte-deterministic no matter how arrivals are generated.
std::string RunBufferedSpans(uint64_t seed) {
  SpanConfig config;
  config.sample_every = 32;
  ClusterHarness harness;
  harness.AddServers(4);
  PhysicalServer* first = harness.resources().servers()[0].get();
  Scheduler* tpcw = harness.AddApplication(MakeTpcw());
  Replica* replica = harness.resources().CreateReplica(first, 8192);
  tpcw->AddReplica(replica);
  ClientEmulator::Options cohort;
  cohort.cohort = true;
  harness.AddConstantClients(tpcw, 120, seed, cohort);
  SpanTracer* spans = harness.EnableSpanTracing(config);
  spans->EnableBuffering();
  harness.Start();
  harness.RunFor(150);
  spans->Close();
  return spans->BufferedJson();
}

TEST(SpanTracerTest, ExportIsDeterministicAcrossIdenticalCohortRuns) {
  const std::string first = RunBufferedSpans(5);
  const std::string second = RunBufferedSpans(5);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // And the export is valid Chrome trace_event JSON: one array of
  // objects whose "X" slices carry ts/dur.
  JsonValue root;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(first, &root, &error)) << error;
  ASSERT_TRUE(root.is_array());
  ASSERT_FALSE(root.array.empty());
  uint64_t slices = 0;
  for (const JsonValue& event : root.array) {
    ASSERT_TRUE(event.is_object());
    const std::string ph = event.StringOr("ph", "");
    EXPECT_FALSE(ph.empty());
    if (ph == "X") {
      ++slices;
      EXPECT_GE(event.NumberOr("ts", -1), 0);
      EXPECT_GE(event.NumberOr("dur", -1), 0);
    }
  }
  EXPECT_GT(slices, 0u);
}

TEST(SpanTracerTest, CaptureReplayReproducesSpanOutputByteForByte) {
  const std::string path = TempPath("fglb_span_tracer_replay.fglbcap");
  const double duration = 200;
  std::string live_spans;
  {
    SelectiveRetuner::Config retuner_config;
    ClusterHarness harness(retuner_config);
    AssembleConsolidation(&harness, duration, /*seed=*/1);
    SpanConfig span_config;
    span_config.sample_every = 16;
    SpanTracer* spans = harness.EnableSpanTracing(span_config);
    spans->EnableBuffering();

    CaptureWriter writer(&harness.sim());
    CaptureInfo info;
    info.seed = 1;
    info.fault_seed = 1;
    info.scenario = "consolidation";
    info.duration_seconds = duration;
    info.interval_seconds = harness.retuner().config().interval_seconds;
    info.mrc_sample_rate = harness.retuner().config().mrc.sample_rate;
    info.max_migrations_per_interval =
        harness.retuner().config().max_migrations_per_interval;
    info.span_spec = spans->config().ToString();
    std::string error;
    ASSERT_TRUE(writer.Open(path, info, SnapshotTopology(harness), &error))
        << error;
    harness.AttachRecorders(&writer, &writer);
    harness.Start();
    harness.RunFor(duration);
    ASSERT_TRUE(writer.Finalize(harness.retuner().actions(),
                                harness.retuner().samples()));
    spans->Close();
    live_spans = spans->BufferedJson();
    ASSERT_GT(spans->finished(), 0u);
  }

  Capture capture;
  std::string error;
  ASSERT_TRUE(ReadCapture(path, &capture, &error)) << error;
  EXPECT_EQ(capture.info.span_spec, "sample=16");
  ReplayRunner runner(&capture, ReplayBuildOptions{});
  ASSERT_TRUE(runner.Build(&error)) << error;
  SpanTracer* replay_spans = runner.harness()->span_tracer();
  // The span spec traveled in the capture, so the replayed harness
  // already has an identically-configured tracer.
  ASSERT_NE(replay_spans, nullptr);
  EXPECT_EQ(replay_spans->config().sample_every, 16u);
  replay_spans->EnableBuffering();
  ASSERT_TRUE(runner.Run(&error)) << error;
  replay_spans->Close();

  EXPECT_EQ(replay_spans->BufferedJson(), live_spans);
  std::remove(path.c_str());
}

TEST(SpanTracerTest, DisabledLayerIsANoOp) {
  // No EnableSpanTracing: queries flow normally, no span instrument
  // ever reaches the registry, and no tracer exists to consult.
  ClusterHarness harness;
  AssembleConsolidation(&harness, 120, /*seed=*/3);
  harness.Start();
  harness.RunFor(120);

  EXPECT_EQ(harness.span_tracer(), nullptr);
  EXPECT_GT(harness.schedulers()[0]->total_completed(), 0u);
  JsonValue root;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(harness.metrics().ToJson(), &root, &error))
      << error;
  const JsonValue* histograms = root.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  for (const auto& [name, value] : histograms->object) {
    EXPECT_NE(name.rfind("span.", 0), 0u) << "unexpected " << name;
  }
}

TEST(SpanTracerTest, TracedRunStaysDeterministicVsUntraced) {
  // Span tracing must not perturb the simulation: the same scenario
  // with and without a tracer completes the same queries and takes the
  // same controller actions.
  auto run = [](bool traced) {
    ClusterHarness harness;
    AssembleConsolidation(&harness, 150, /*seed=*/7);
    if (traced) {
      SpanConfig config;
      config.sample_every = 4;
      harness.EnableSpanTracing(config);
    }
    harness.Start();
    harness.RunFor(150);
    return std::make_tuple(harness.schedulers()[0]->total_completed(),
                           harness.schedulers()[1]->total_completed(),
                           harness.retuner().actions().size(),
                           harness.retuner().samples().size());
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace fglb
