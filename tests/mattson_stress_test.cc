#include <gtest/gtest.h>

#include "common/random.h"
#include "mrc/mattson_stack.h"

namespace fglb {
namespace {

// Stress paths of the Fenwick stack: slot-space compaction (long trace,
// few pages) and tree growth (many distinct pages), verified against
// the list oracle.

TEST(MattsonStressTest, CompactionPathMatchesOracle) {
  // 200k accesses over 100 pages: next_slot_ repeatedly exceeds
  // 4x distinct, forcing CompactIfSparse many times.
  Rng rng(3);
  ListMattsonStack list;
  FenwickMattsonStack fenwick;
  for (int i = 0; i < 200000; ++i) {
    const PageId p = MakePageId(1, rng.NextUint64(100));
    ASSERT_EQ(list.Access(p), fenwick.Access(p)) << "at access " << i;
  }
  EXPECT_EQ(list.hit_counts(), fenwick.hit_counts());
  EXPECT_EQ(list.cold_misses(), fenwick.cold_misses());
}

TEST(MattsonStressTest, TreeGrowthPathMatchesOracleSpotChecks) {
  // 60k accesses over 30k pages: the Fenwick tree grows through
  // several capacity doublings. The list oracle is O(depth) per access
  // so we only spot-check depths, then compare the full histograms.
  Rng rng(5);
  std::vector<PageId> trace;
  for (int i = 0; i < 60000; ++i) {
    trace.push_back(MakePageId(1, rng.NextUint64(30000)));
  }
  FenwickMattsonStack fenwick;
  for (PageId p : trace) fenwick.Access(p);

  ListMattsonStack list;
  for (PageId p : trace) list.Access(p);
  EXPECT_EQ(list.hit_counts(), fenwick.hit_counts());
  EXPECT_EQ(list.cold_misses(), fenwick.cold_misses());
  EXPECT_EQ(list.distinct_pages(), fenwick.distinct_pages());
}

TEST(MattsonStressTest, TotalsAlwaysBalance) {
  // Invariant: total accesses = cold misses + sum(hit counts).
  Rng rng(7);
  FenwickMattsonStack stack;
  for (int i = 0; i < 50000; ++i) {
    stack.Access(MakePageId(2, ScrambleToDomain(rng.NextUint64(5000), 5000)));
  }
  uint64_t hits = 0;
  for (uint64_t h : stack.hit_counts()) hits += h;
  EXPECT_EQ(stack.total_accesses(), stack.cold_misses() + hits);
}

TEST(MattsonStressTest, SingleHotPage) {
  FenwickMattsonStack stack;
  const PageId p = MakePageId(1, 42);
  for (int i = 0; i < 1000; ++i) stack.Access(p);
  EXPECT_EQ(stack.cold_misses(), 1u);
  ASSERT_EQ(stack.hit_counts().size(), 1u);
  EXPECT_EQ(stack.hit_counts()[0], 999u);
  EXPECT_EQ(stack.distinct_pages(), 1u);
}

TEST(MattsonStressTest, StridedPatternDepths) {
  // Round-robin over k pages gives every re-reference depth exactly k.
  const uint64_t k = 37;
  ListMattsonStack list;
  FenwickMattsonStack fenwick;
  for (int round = 0; round < 100; ++round) {
    for (uint64_t i = 0; i < k; ++i) {
      const PageId p = MakePageId(1, i);
      const uint64_t dl = list.Access(p);
      const uint64_t df = fenwick.Access(p);
      ASSERT_EQ(dl, df);
      if (round > 0) {
        ASSERT_EQ(df, k);
      }
    }
  }
  ASSERT_GE(list.hit_counts().size(), k);
  EXPECT_EQ(list.hit_counts()[k - 1], 99u * k);
}

}  // namespace
}  // namespace fglb
