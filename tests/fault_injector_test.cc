#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/trace_check.h"
#include "scenarios/harness.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

// --- the spec grammar and its canonical serialization ---

TEST(FaultSpecTest, ParseYieldsCanonicalTimeSortedToString) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(FaultSpec::Parse(
      "disk@300:server=0,factor=8,duration=120;"
      "crash@120:replica=1,restart=60;"
      "migration@100:delay=5,fail=0.5,duration=300",
      &spec, &error))
      << error;
  ASSERT_EQ(spec.events.size(), 3u);
  EXPECT_EQ(spec.ToString(),
            "migration@100:delay=5,fail=0.5,duration=300;"
            "crash@120:replica=1,restart=60;"
            "disk@300:server=0,factor=8,duration=120");
}

TEST(FaultSpecTest, ToStringRoundTripsThroughParse) {
  const FaultSpec spec = MakeRandomFaultSpec(42, 600);
  const std::string text = spec.ToString();
  FaultSpec reparsed;
  std::string error;
  ASSERT_TRUE(FaultSpec::Parse(text, &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.ToString(), text);
}

TEST(FaultSpecTest, EveryKindRoundTripsByteIdentically) {
  const char* entries[] = {
      "crash@120:replica=1,restart=60",
      "crash@120:replica=1",  // never restarted
      "disk@300:server=0,factor=8,duration=120",
      "slow@200:replica=0,factor=3,duration=100",
      "stats@250:replica=0,mode=drop,duration=50",
      "stats@250:replica=0,mode=partial,duration=50",
      "migration@100:delay=5,fail=0.5,duration=300",
      "tier@150:replica=0,mode=fail,duration=60",
      "tier@150:replica=0,mode=degrade,factor=10,duration=60",
      "net@200:drop=0.1,dup=0.05,corrupt=0.02,reorder=0.1,delay=2,"
      "duration=120",
      "net@200:drop=0.25,duration=60",  // partial rate set
      "ctl@400:restart=30",
      "ctl@400:",  // controller stays down
  };
  for (const char* text : entries) {
    FaultSpec spec;
    std::string error;
    ASSERT_TRUE(FaultSpec::Parse(text, &spec, &error)) << text << ": "
                                                       << error;
    ASSERT_EQ(spec.events.size(), 1u) << text;
    FaultSpec reparsed;
    ASSERT_TRUE(FaultSpec::Parse(spec.ToString(), &reparsed, &error))
        << spec.ToString() << ": " << error;
    EXPECT_EQ(reparsed.ToString(), spec.ToString()) << text;
  }
}

TEST(FaultSpecTest, ParseRejectsSloppyEntriesNamingTheToken) {
  struct Case {
    const char* text;
    const char* named;  // substring the error must carry
  };
  const Case bad[] = {
      {"crash@10:replica=1,replica=2", "replica"},       // duplicate key
      {"net@10:drop=0.1,drop=0.2,duration=5", "drop"},   // duplicate key
      {"crash@10:replica=", "replica"},                  // empty value
      {"net@10:drop=0.1,,duration=5", "empty fault param"},  // doubled comma
      {"crash@10:replica=1,", "trailing"},               // trailing comma
      {"net@10:drop=0.1,duration=5,", "trailing"},       // trailing comma
      {"net@10:drop=1.5,duration=5", "drop"},            // rate out of range
      {"net@10:duration=5", "drop"},                     // window does nothing
  };
  for (const Case& c : bad) {
    FaultSpec spec;
    std::string error;
    EXPECT_FALSE(FaultSpec::Parse(c.text, &spec, &error)) << c.text;
    EXPECT_NE(error.find(c.named), std::string::npos)
        << c.text << " -> " << error;
    EXPECT_TRUE(spec.events.empty()) << c.text;  // *out left untouched
  }
}

TEST(FaultSpecTest, RandomSpecWithNewKindsRoundTripsAndStaysInBounds) {
  RandomFaultProfile profile;
  profile.replicas = 3;
  profile.servers = 2;
  profile.tier_faults = 1;
  profile.net_windows = 2;
  profile.ctl_crashes = 1;
  const FaultSpec spec = MakeRandomFaultSpec(13, 1000, profile);
  EXPECT_EQ(spec.events.size(), 9u);  // 5 legacy + tier + 2 net + ctl
  int tiers = 0, nets = 0, ctls = 0;
  for (const FaultEvent& e : spec.events) {
    EXPECT_GE(e.time, profile.min_time_fraction * 1000);
    EXPECT_LE(e.time, profile.max_time_fraction * 1000);
    switch (e.kind) {
      case FaultKind::kTier:
        ++tiers;
        EXPECT_TRUE(e.tier_mode == kTierFail || e.tier_mode == kTierDegrade);
        break;
      case FaultKind::kNet:
        ++nets;
        for (double rate : {e.drop_rate, e.dup_rate, e.corrupt_rate,
                            e.reorder_rate}) {
          EXPECT_GE(rate, 0.0);
          EXPECT_LE(rate, 1.0);
        }
        EXPECT_GT(e.duration, 0.0);
        break;
      case FaultKind::kCtl:
        ++ctls;
        EXPECT_GT(e.restart_after, 0.0);  // soak runs must come back up
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(tiers, 1);
  EXPECT_EQ(nets, 2);
  EXPECT_EQ(ctls, 1);
  // Byte-identical per seed, round-trips through the grammar.
  EXPECT_EQ(spec.ToString(), MakeRandomFaultSpec(13, 1000, profile).ToString());
  FaultSpec reparsed;
  std::string error;
  ASSERT_TRUE(FaultSpec::Parse(spec.ToString(), &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.ToString(), spec.ToString());
}

TEST(FaultSpecTest, ParseRejectsMalformedEntries) {
  const char* bad[] = {
      "boom@10:replica=1",              // unknown kind
      "crash@10",                       // no params separator
      "crash@-5:replica=1",             // negative time
      "crash@10:replica=x",             // non-integer id
      "crash@10:restart=5",             // required replica missing
      "disk@10:server=0",               // required factor missing
      "slow@10:factor=2",               // required replica missing
      "stats@10:replica=0,mode=half",   // unknown dropout mode
      "migration@10:delay=1,fail=1.5",  // fail rate out of range
      "crash@10:color=red",             // unknown param
  };
  for (const char* text : bad) {
    FaultSpec spec;
    std::string error;
    EXPECT_FALSE(FaultSpec::Parse(text, &spec, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(FaultSpecTest, RandomSpecIsByteIdenticalPerSeed) {
  EXPECT_EQ(MakeRandomFaultSpec(7, 900).ToString(),
            MakeRandomFaultSpec(7, 900).ToString());
  EXPECT_NE(MakeRandomFaultSpec(7, 900).ToString(),
            MakeRandomFaultSpec(8, 900).ToString());
}

TEST(FaultSpecTest, RandomSpecRespectsProfileBounds) {
  RandomFaultProfile profile;
  profile.replicas = 3;
  profile.servers = 2;
  const FaultSpec spec = MakeRandomFaultSpec(99, 1000, profile);
  EXPECT_EQ(spec.events.size(), 5u);  // one of each category by default
  for (const FaultEvent& e : spec.events) {
    EXPECT_GE(e.time, profile.min_time_fraction * 1000);
    EXPECT_LE(e.time, profile.max_time_fraction * 1000);
    if (e.replica >= 0) {
      EXPECT_LT(e.replica, profile.replicas);
    }
    if (e.server >= 0) {
      EXPECT_LT(e.server, profile.servers);
    }
  }
}

// --- the injector against a recording backend ---

class RecordingBackend : public FaultBackend {
 public:
  explicit RecordingBackend(Simulator* sim) : sim_(sim) {}

  bool reject_all = false;
  std::vector<std::string> log;

  bool CrashReplica(int id) override { return Note("crash", id, 0); }
  bool RestartReplica(int id) override { return Note("restart", id, 0); }
  bool SetDiskLatencyFactor(int id, double f) override {
    return Note("disk", id, f);
  }
  bool SetReplicaSlowdown(int id, double f) override {
    return Note("slow", id, f);
  }
  bool SetStatsDropout(int id, int mode) override {
    return Note("stats", id, mode);
  }

 private:
  bool Note(const char* kind, int target, double factor) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%.0f %s %d %g", sim_->Now(), kind,
                  target, factor);
    log.push_back(buf);
    return !reject_all;
  }

  Simulator* sim_;
};

TEST(FaultInjectorTest, FiresRevertsAndRestartsOnSchedule) {
  Simulator sim;
  RecordingBackend backend(&sim);
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(FaultSpec::Parse(
      "crash@100:replica=1,restart=50;"
      "disk@30:server=0,factor=4,duration=20;"
      "stats@60:replica=0,mode=drop,duration=10",
      &spec, &error))
      << error;
  FaultInjector injector(&sim, &backend, std::move(spec), /*seed=*/1);
  injector.Arm();
  sim.RunToCompletion();
  const std::vector<std::string> expected = {
      "30 disk 0 4",     // spike applied
      "50 disk 0 1",     // reverted at 30 + 20
      "60 stats 0 1",    // drop-all dropout
      "70 stats 0 0",    // restored at 60 + 10
      "100 crash 1 0",   //
      "150 restart 1 0"  // restart 50s after the crash
  };
  EXPECT_EQ(backend.log, expected);
  EXPECT_EQ(injector.faults_injected(), 6u);
  EXPECT_EQ(injector.noop_faults(), 0u);
}

TEST(FaultInjectorTest, CountsNoopsWhenBackendRejects) {
  Simulator sim;
  RecordingBackend backend(&sim);
  backend.reject_all = true;
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(FaultSpec::Parse(
      "crash@10:replica=7,restart=5;slow@20:replica=9,factor=2,duration=50",
      &spec, &error))
      << error;
  FaultInjector injector(&sim, &backend, std::move(spec), /*seed=*/1);
  injector.Arm();
  sim.RunToCompletion();
  // Rejected faults schedule neither restarts nor reverts.
  EXPECT_EQ(backend.log.size(), 2u);
  EXPECT_EQ(injector.faults_injected(), 0u);
  EXPECT_EQ(injector.noop_faults(), 2u);
}

TEST(FaultInjectorTest, MigrationDecisionsAreSeedDeterministic) {
  auto draw = [](uint64_t seed) {
    Simulator sim;
    RecordingBackend backend(&sim);
    FaultSpec spec;
    std::string error;
    EXPECT_TRUE(FaultSpec::Parse("migration@0:delay=3,fail=0.5,duration=1000",
                                 &spec, &error))
        << error;
    FaultInjector injector(&sim, &backend, std::move(spec), seed);
    injector.Arm();
    sim.RunUntil(1);
    EXPECT_TRUE(injector.migration_window_active());
    std::string sequence;
    for (int i = 0; i < 64; ++i) {
      const auto d = injector.OnMigrationAttempt(/*class_key=*/123, i);
      sequence += d.fail ? 'F' : (d.delay_seconds > 0 ? 'D' : '.');
    }
    return sequence;
  };
  const std::string a = draw(11);
  EXPECT_EQ(a, draw(11));
  EXPECT_NE(a, draw(12));
  // Inside the window every attempt either fails or is delayed.
  EXPECT_EQ(a.find('.'), std::string::npos);
  EXPECT_NE(a.find('F'), std::string::npos);
  EXPECT_NE(a.find('D'), std::string::npos);
}

TEST(FaultInjectorTest, NoInterferenceOutsideMigrationWindow) {
  Simulator sim;
  RecordingBackend backend(&sim);
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(FaultSpec::Parse("migration@10:delay=5,fail=1,duration=20",
                               &spec, &error))
      << error;
  FaultInjector injector(&sim, &backend, std::move(spec), /*seed=*/3);
  injector.Arm();
  sim.RunUntil(5);  // before the window opens
  EXPECT_FALSE(injector.migration_window_active());
  auto d = injector.OnMigrationAttempt(1, 1);
  EXPECT_FALSE(d.fail);
  EXPECT_DOUBLE_EQ(d.delay_seconds, 0.0);
  sim.RunUntil(20);  // inside
  EXPECT_TRUE(injector.migration_window_active());
  EXPECT_TRUE(injector.OnMigrationAttempt(1, 1).fail);  // fail=1
  sim.RunUntil(35);  // window reverted at t = 30
  EXPECT_FALSE(injector.migration_window_active());
  d = injector.OnMigrationAttempt(1, 1);
  EXPECT_FALSE(d.fail);
  EXPECT_DOUBLE_EQ(d.delay_seconds, 0.0);
}

// --- end-to-end deterministic replay (the PR's acceptance check) ---

struct ChaosRun {
  std::string schedule;
  std::vector<std::string> actions;  // the --phase=action projection
  uint64_t completed = 0;
};

// A chaos-replica style scenario: TPC-W on two replicas plus RUBiS
// sharing one of them, with a crash/restart, a stats dropout and a
// migration-fault window injected mid-run.
ChaosRun RunChaos(uint64_t fault_seed) {
  SelectiveRetuner::Config config;
  config.max_migrations_per_interval = 2;
  ClusterHarness h(config);
  h.trace().EnableBuffering();
  h.AddServers(3);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = h.AddApplication(MakeRubis(rubis_options));
  Replica* shared = h.resources().CreateReplica(
      h.resources().servers()[0].get(), 8192);
  Replica* spare = h.resources().CreateReplica(
      h.resources().servers()[1].get(), 8192, /*engine_seed=*/2);
  tpcw->AddReplica(shared);
  tpcw->AddReplica(spare);
  rubis->AddReplica(shared);
  h.AddConstantClients(tpcw, 120, /*seed=*/7);
  h.AddConstantClients(rubis, 40, /*seed=*/8);

  FaultSpec spec;
  std::string error;
  EXPECT_TRUE(FaultSpec::Parse(
      "crash@150:replica=1,restart=60;"
      "stats@200:replica=0,mode=partial,duration=60;"
      "migration@100:delay=2,fail=0.4,duration=200",
      &spec, &error))
      << error;
  h.InjectFaults(std::move(spec), fault_seed);
  h.Start();
  h.RunFor(420);

  ChaosRun out;
  out.schedule = h.fault_injector()->spec().ToString();
  const std::vector<std::string> lines = h.trace().BufferedLines();
  std::string check_error;
  EXPECT_TRUE(CheckTraceLines(lines, &check_error)) << check_error;
  EXPECT_TRUE(ActionLines(lines, &out.actions, &check_error)) << check_error;
  out.completed = tpcw->total_completed() + rubis->total_completed();
  return out;
}

TEST(ChaosDeterminismTest, IdenticalSeedsReplayByteIdentically) {
  const ChaosRun a = RunChaos(5);
  const ChaosRun b = RunChaos(5);
  EXPECT_FALSE(a.schedule.empty());
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.actions, b.actions);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_GT(a.completed, 0u);
}

TEST(ChaosRecoveryTest, SlaReMetAfterCrashWindowWithBoundedMigrations) {
  SelectiveRetuner::Config config;
  config.max_migrations_per_interval = 2;
  ClusterHarness h(config);
  h.trace().EnableBuffering();
  h.AddServers(3);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* a = h.resources().CreateReplica(
      h.resources().servers()[0].get(), 8192);
  Replica* b = h.resources().CreateReplica(
      h.resources().servers()[1].get(), 8192, /*engine_seed=*/2);
  tpcw->AddReplica(a);
  tpcw->AddReplica(b);
  h.AddConstantClients(tpcw, 160, /*seed=*/31);

  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(
      FaultSpec::Parse("crash@150:replica=1,restart=60", &spec, &error))
      << error;
  h.InjectFaults(std::move(spec), /*seed=*/5);
  h.Start();
  h.RunFor(480);

  // The crash and its restart both applied (nothing degenerated into a
  // no-op), and the app kept serving capacity. The controller may have
  // legitimately released spare replicas again once load allowed.
  EXPECT_EQ(h.fault_injector()->faults_injected(), 2u);
  EXPECT_EQ(h.fault_injector()->noop_faults(), 0u);
  EXPECT_GE(tpcw->replicas().size(), 1u);

  // SLA re-met after the fault window (restart at t = 210 + warmup).
  const auto tail = h.Summarize(tpcw->app().id, 360, 480);
  EXPECT_GT(tail.queries, 0u);
  EXPECT_LT(tail.avg_latency, tpcw->app().sla_latency_seconds);
  EXPECT_LE(tail.sla_violations, 1);

  // Bounded migrations, read back from the decision trace: recovery
  // must not degenerate into class-placement flapping.
  int migrations = 0;
  for (const std::string& line : h.trace().BufferedLines()) {
    JsonValue event;
    std::string parse_error;
    ASSERT_TRUE(JsonValue::Parse(line, &event, &parse_error)) << parse_error;
    if (event.StringOr("phase", "") != "action") continue;
    const std::string kind = event.StringOr("kind", "");
    if (kind == "class_rescheduled" || kind == "io_eviction") ++migrations;
  }
  EXPECT_LE(migrations, 10);
  const auto& stats = h.retuner().migration_stats();
  EXPECT_LE(stats.max_attempts_observed,
            1 + h.retuner().config().migration_max_retries);
  EXPECT_LE(stats.applied + stats.abandoned, stats.started);
}

}  // namespace
}  // namespace fglb
