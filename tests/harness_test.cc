#include "scenarios/harness.h"

#include <gtest/gtest.h>

#include "workload/tpcw.h"

namespace fglb {
namespace {

TEST(HarnessTest, AddServersPopulatesPool) {
  ClusterHarness h;
  h.AddServers(4);
  EXPECT_EQ(h.resources().servers().size(), 4u);
}

TEST(HarnessTest, AddApplicationKeepsSpecAlive) {
  ClusterHarness h;
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  ASSERT_NE(tpcw, nullptr);
  EXPECT_EQ(tpcw->app().name, "TPC-W");
  EXPECT_EQ(h.mutable_app(tpcw), &tpcw->app());
}

TEST(HarnessTest, MutableAppUnknownSchedulerIsNull) {
  ClusterHarness h1, h2;
  Scheduler* foreign = h2.AddApplication(MakeTpcw());
  EXPECT_EQ(h1.mutable_app(foreign), nullptr);
}

TEST(HarnessTest, RunForAdvancesClock) {
  ClusterHarness h;
  EXPECT_DOUBLE_EQ(h.sim().Now(), 0.0);
  h.RunFor(42.5);
  EXPECT_DOUBLE_EQ(h.sim().Now(), 42.5);
  h.RunFor(7.5);
  EXPECT_DOUBLE_EQ(h.sim().Now(), 50.0);
}

TEST(HarnessTest, ClientsAddedAfterStartBeginImmediately) {
  ClusterHarness h;
  h.AddServers(1);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.Start();
  h.RunFor(50);
  EXPECT_EQ(tpcw->total_completed(), 0u);
  ClientEmulator* late = h.AddConstantClients(tpcw, 5, 3);
  h.RunFor(50);
  EXPECT_GT(late->completed_queries(), 0u);
}

TEST(HarnessTest, SummarizeWindowsAreHalfOpen) {
  ClusterHarness h;
  h.AddServers(1);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.AddConstantClients(tpcw, 10, 5);
  h.Start();
  h.RunFor(100);
  const auto all = h.Summarize(tpcw->app().id, 0, 101);
  const auto first = h.Summarize(tpcw->app().id, 0, 50);
  const auto second = h.Summarize(tpcw->app().id, 50, 101);
  EXPECT_EQ(all.queries, first.queries + second.queries);
  EXPECT_EQ(all.intervals, first.intervals + second.intervals);
}

TEST(HarnessTest, SummarizeEmptyWindow) {
  ClusterHarness h;
  h.AddServers(1);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  const auto summary = h.Summarize(tpcw->app().id, 1000, 2000);
  EXPECT_EQ(summary.queries, 0u);
  EXPECT_EQ(summary.intervals, 0);
  EXPECT_DOUBLE_EQ(summary.avg_latency, 0.0);
}

TEST(HarnessTest, StartIsIdempotent) {
  ClusterHarness h;
  h.AddServers(1);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.AddConstantClients(tpcw, 5, 7);
  h.Start();
  h.Start();  // no double-started emulators / ticks
  h.RunFor(55);
  EXPECT_EQ(h.retuner().samples().size(), 5u);
}

}  // namespace
}  // namespace fglb
