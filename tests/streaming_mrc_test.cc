// Tests for the streaming MRC engine: differential agreement with the
// recompute path at every curve point across trace shapes and sample
// rates, the documented sliding-window error bound, determinism, the
// LogAnalyzer streaming diagnosis path, and live-vs-replay curve
// identity through a FGLBCAP1 capture.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/log_analyzer.h"
#include "core/selective_retuner.h"
#include "engine/database_engine.h"
#include "mrc/miss_ratio_curve.h"
#include "mrc/streaming_mrc.h"
#include "replay/capture.h"
#include "replay/replayer.h"
#include "scenarios/harness.h"
#include "storage/disk_model.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

std::vector<PageId> MakeZipfTrace(uint64_t pages, double theta, size_t n,
                                  uint64_t seed) {
  Rng rng(seed);
  ZipfGenerator zipf(pages, theta);
  std::vector<PageId> trace;
  trace.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    trace.push_back(MakePageId(1, ScrambleToDomain(zipf.Sample(rng), pages)));
  }
  return trace;
}

std::vector<PageId> MakeScanTrace(uint64_t region, int repetitions) {
  std::vector<PageId> trace;
  trace.reserve(region * repetitions);
  for (int r = 0; r < repetitions; ++r) {
    for (uint64_t i = 0; i < region; ++i) trace.push_back(MakePageId(2, i));
  }
  return trace;
}

std::vector<PageId> MakeLoopingTrace(uint64_t hot, uint64_t wide, size_t n,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<PageId> trace;
  trace.reserve(n);
  uint64_t sweep_pos = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i % 8 == 0) {
      trace.push_back(MakePageId(3, hot + (sweep_pos++ % wide)));
    } else {
      trace.push_back(MakePageId(3, rng.NextUint64(hot)));
    }
  }
  return trace;
}

double MaxCurveDivergence(const MissRatioCurve& a, const MissRatioCurve& b) {
  const uint64_t max_pages = std::max(a.max_pages(), b.max_pages());
  double worst = 0;
  for (uint64_t cache = 0; cache <= max_pages; ++cache) {
    worst = std::max(worst,
                     std::fabs(a.MissRatioAt(cache) - b.MissRatioAt(cache)));
  }
  return worst;
}

// --- Differential: streaming vs window recompute, no expiry ---

// With the window at least as long as the trace, the estimator is a
// pure incremental Mattson computation over the same sampled
// references as the recompute path (shared page hash, shared
// adjusted-mass policy), so the curves must agree exactly at every
// cache size — not merely within a tolerance.
struct DifferentialCase {
  const char* name;
  std::vector<PageId> (*make)();
  double sample_rate;
};

std::vector<PageId> SkewedTrace() { return MakeZipfTrace(2000, 0.9, 40000, 7); }
std::vector<PageId> SequentialTrace() { return MakeScanTrace(1500, 24); }
std::vector<PageId> LoopTrace() {
  return MakeLoopingTrace(1000, 3000, 40000, 11);
}

class StreamingDifferentialTest
    : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(StreamingDifferentialTest, MatchesRecomputeAtEveryCacheSize) {
  const DifferentialCase& param = GetParam();
  const std::vector<PageId> trace = param.make();

  StreamingMrcEstimator::Options options;
  options.sample_rate = param.sample_rate;
  options.window_accesses = trace.size();  // no expiry
  StreamingMrcEstimator estimator(options);
  for (PageId p : trace) estimator.Record(p);
  const MissRatioCurve streaming = estimator.Curve();

  MrcConfig config;
  config.sample_rate = param.sample_rate;
  const MissRatioCurve recompute = MissRatioCurve::FromTrace(
      SpanPair<PageId>(std::span<const PageId>(trace)), config);

  ASSERT_EQ(streaming.total_accesses(), recompute.total_accesses());
  const uint64_t max_pages =
      std::max(streaming.max_pages(), recompute.max_pages());
  for (uint64_t cache = 0; cache <= max_pages; ++cache) {
    ASSERT_DOUBLE_EQ(streaming.MissRatioAt(cache),
                     recompute.MissRatioAt(cache))
        << param.name << " at cache size " << cache;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Traces, StreamingDifferentialTest,
    ::testing::Values(DifferentialCase{"zipf_exact", &SkewedTrace, 1.0},
                      DifferentialCase{"zipf_8th", &SkewedTrace, 1.0 / 8},
                      DifferentialCase{"zipf_4th", &SkewedTrace, 1.0 / 4},
                      DifferentialCase{"scan_exact", &SequentialTrace, 1.0},
                      DifferentialCase{"scan_8th", &SequentialTrace, 1.0 / 8},
                      DifferentialCase{"loop_exact", &LoopTrace, 1.0},
                      DifferentialCase{"loop_8th", &LoopTrace, 1.0 / 8}),
    [](const ::testing::TestParamInfo<DifferentialCase>& info) {
      return info.param.name;
    });

// --- Sliding-window error bound ---

// Once the window slides, the streaming curve may differ from a
// from-scratch recomputation of the final window only through
// references whose previous use straddles the window start — at most
// one per distinct page, so the divergence is bounded by
// distinct/window (the error model documented on the class).
TEST(StreamingWindowTest, ExpiryDivergenceWithinDocumentedBound) {
  const size_t kWindow = 8000;
  const std::vector<PageId> trace = MakeZipfTrace(1000, 0.8, 24000, 17);

  StreamingMrcEstimator::Options options;
  options.sample_rate = 1.0;  // no sampling noise: isolate windowing
  options.window_accesses = kWindow;
  StreamingMrcEstimator estimator(options);
  for (PageId p : trace) estimator.Record(p);
  EXPECT_EQ(estimator.in_window_accesses(), kWindow);

  const std::vector<PageId> window(trace.end() - kWindow, trace.end());
  const std::unordered_set<PageId> distinct(window.begin(), window.end());
  const MissRatioCurve recompute =
      MissRatioCurve::FromTrace(std::span<const PageId>(window));

  const double bound =
      static_cast<double>(distinct.size()) / static_cast<double>(kWindow);
  EXPECT_LE(MaxCurveDivergence(estimator.Curve(), recompute), bound);
}

TEST(StreamingWindowTest, SampledLiveStaysBoundedByWindow) {
  StreamingMrcEstimator::Options options;
  options.sample_rate = 1.0 / 8;
  options.window_accesses = 4000;
  StreamingMrcEstimator estimator(options);
  const std::vector<PageId> trace = MakeZipfTrace(3000, 0.5, 50000, 19);
  for (PageId p : trace) estimator.Record(p);
  // Only window-resident sampled references may be retained.
  EXPECT_LE(estimator.sampled_live(), options.window_accesses);
  // And the hash really thins the stream (generous envelope).
  EXPECT_LT(estimator.sampled_live(), options.window_accesses / 4);
  EXPECT_EQ(estimator.total_accesses(), trace.size());
}

// --- Determinism ---

TEST(StreamingDeterminismTest, SameInputYieldsIdenticalCurve) {
  const std::vector<PageId> trace = MakeZipfTrace(1200, 0.7, 30000, 23);
  StreamingMrcEstimator::Options options;
  options.sample_rate = 1.0 / 8;
  options.window_accesses = 10000;
  StreamingMrcEstimator a(options);
  StreamingMrcEstimator b(options);
  for (PageId p : trace) {
    a.Record(p);
    b.Record(p);
  }
  const MissRatioCurve ca = a.Curve();
  const MissRatioCurve cb = b.Curve();
  ASSERT_EQ(ca.max_pages(), cb.max_pages());
  ASSERT_EQ(ca.total_accesses(), cb.total_accesses());
  for (uint64_t cache = 0; cache <= ca.max_pages(); ++cache) {
    ASSERT_EQ(ca.MissRatioAt(cache), cb.MissRatioAt(cache))
        << "cache size " << cache;
  }
}

TEST(StreamingDeterminismTest, ResetMatchesFreshInstance) {
  const std::vector<PageId> first = MakeZipfTrace(500, 0.9, 12000, 29);
  const std::vector<PageId> second = MakeZipfTrace(900, 0.4, 12000, 31);
  StreamingMrcEstimator::Options options;
  options.sample_rate = 1.0 / 4;
  options.window_accesses = 6000;
  StreamingMrcEstimator reused(options);
  for (PageId p : first) reused.Record(p);
  reused.Reset();
  EXPECT_EQ(reused.total_accesses(), 0u);
  EXPECT_EQ(reused.sampled_live(), 0u);
  for (PageId p : second) reused.Record(p);
  StreamingMrcEstimator fresh(options);
  for (PageId p : second) fresh.Record(p);
  const MissRatioCurve cr = reused.Curve();
  const MissRatioCurve cf = fresh.Curve();
  ASSERT_EQ(cr.max_pages(), cf.max_pages());
  for (uint64_t cache = 0; cache <= cr.max_pages(); ++cache) {
    ASSERT_EQ(cr.MissRatioAt(cache), cf.MissRatioAt(cache))
        << "cache size " << cache;
  }
}

// --- LogAnalyzer streaming path ---

TEST(StreamingDiagnosisTest, StreamingModeDiagnosesWithoutWindowReplay) {
  DiskModel disk;
  DatabaseEngine::Options engine_options;
  engine_options.access_window_capacity = 8000;
  DatabaseEngine engine("stream", engine_options, &disk);
  StreamingMrcEstimator::Options streaming_options;
  streaming_options.sample_rate = 1.0;
  streaming_options.window_accesses = 8000;
  engine.EnableStreamingMrc(streaming_options);

  const ClassKey key = MakeClassKey(1, 1);
  StatsCollector::AccessRecorder recorder = engine.stats().RecorderFor(key);
  for (PageId p : MakeZipfTrace(800, 0.8, 8000, 37)) recorder.Record(p);
  ASSERT_NE(engine.stats().StreamingFor(key), nullptr);
  ASSERT_EQ(engine.stats().StreamingFor(key)->in_window_accesses(), 8000u);

  MrcConfig streaming_config;
  streaming_config.analysis_threads = 1;
  streaming_config.mode = MrcMode::kStreaming;
  LogAnalyzer streaming_analyzer(&engine, OutlierConfig{}, streaming_config);
  const auto streaming_diag = streaming_analyzer.DiagnoseMemory({key});
  ASSERT_EQ(streaming_diag.suspects.size(), 1u);

  // With the estimator unsampled and the window unwrapped, the
  // streaming diagnosis must reproduce the recompute parameters.
  MrcConfig recompute_config;
  recompute_config.analysis_threads = 1;
  LogAnalyzer recompute_analyzer(&engine, OutlierConfig{}, recompute_config);
  const auto recompute_diag = recompute_analyzer.DiagnoseMemory({key});
  ASSERT_EQ(recompute_diag.suspects.size(), 1u);
  EXPECT_EQ(streaming_diag.suspects[0].params.total_memory_pages,
            recompute_diag.suspects[0].params.total_memory_pages);
  EXPECT_EQ(streaming_diag.suspects[0].params.acceptable_memory_pages,
            recompute_diag.suspects[0].params.acceptable_memory_pages);
}

TEST(StreamingDiagnosisTest, ColdEstimatorFallsBackToInsufficientData) {
  DiskModel disk;
  DatabaseEngine::Options engine_options;
  DatabaseEngine engine("cold", engine_options, &disk);
  engine.EnableStreamingMrc(StreamingMrcEstimator::Options{});
  const ClassKey key = MakeClassKey(1, 5);
  for (int i = 0; i < 50; ++i) {
    engine.stats().RecordPageAccess(key, MakePageId(1, i));
  }
  MrcConfig config;
  config.analysis_threads = 1;
  config.mode = MrcMode::kStreaming;
  LogAnalyzer analyzer(&engine, OutlierConfig{}, config);
  const auto diagnosis = analyzer.DiagnoseMemory({key});
  EXPECT_TRUE(diagnosis.suspects.empty());
  EXPECT_TRUE(diagnosis.cleared.empty());
  EXPECT_EQ(diagnosis.insufficient_data, std::vector<ClassKey>{key});
}

// --- Config spec round-trip ---

TEST(MrcSpecTest, RoundTripsThroughSpecString) {
  MrcConfig config;
  EXPECT_EQ(MrcSpecString(config), "");  // defaults stay capture-compatible

  config.mode = MrcMode::kStreaming;
  config.opt_regret = true;
  const std::string spec = MrcSpecString(config);
  EXPECT_FALSE(spec.empty());
  MrcConfig parsed;
  std::string error;
  ASSERT_TRUE(ParseMrcSpec(spec, &parsed, &error)) << error;
  EXPECT_EQ(parsed.mode, MrcMode::kStreaming);
  EXPECT_TRUE(parsed.opt_regret);

  MrcConfig bad;
  EXPECT_FALSE(ParseMrcSpec("mode=bogus", &bad, &error));
  EXPECT_FALSE(error.empty());
}

// --- Live vs replay through FGLBCAP1 ---

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Mirrors fglb_sim's consolidation scenario (as replay_test does), with
// the controller in streaming-MRC mode.
void AssembleConsolidation(ClusterHarness* harness, double duration,
                           uint64_t seed) {
  harness->AddServers(4);
  PhysicalServer* first = harness->resources().servers()[0].get();
  Scheduler* tpcw = harness->AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = harness->AddApplication(MakeRubis(rubis_options));
  Replica* shared = harness->resources().CreateReplica(first, 8192);
  tpcw->AddReplica(shared);
  rubis->AddReplica(shared);
  harness->AddConstantClients(tpcw, 120, seed);
  harness->AddClients(
      rubis,
      std::make_unique<StepLoad>(
          std::vector<std::pair<SimTime, double>>{{duration / 3, 45}}),
      seed + 1);
}

void ExpectSameDiagnoses(
    const std::vector<SelectiveRetuner::DiagnosisRecord>& live,
    const std::vector<SelectiveRetuner::DiagnosisRecord>& replayed) {
  ASSERT_EQ(live.size(), replayed.size());
  const auto same_profiles = [](const std::vector<ClassMemoryProfile>& x,
                                const std::vector<ClassMemoryProfile>& y) {
    ASSERT_EQ(x.size(), y.size());
    for (size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(x[i].key, y[i].key);
      EXPECT_EQ(x[i].params.total_memory_pages,
                y[i].params.total_memory_pages);
      EXPECT_EQ(x[i].params.acceptable_memory_pages,
                y[i].params.acceptable_memory_pages);
      EXPECT_EQ(x[i].params.ideal_miss_ratio, y[i].params.ideal_miss_ratio);
      EXPECT_EQ(x[i].params.acceptable_miss_ratio,
                y[i].params.acceptable_miss_ratio);
      EXPECT_EQ(x[i].regret_vs_opt, y[i].regret_vs_opt);
    }
  };
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i].time, replayed[i].time);
    EXPECT_EQ(live[i].app, replayed[i].app);
    EXPECT_EQ(live[i].replica_id, replayed[i].replica_id);
    same_profiles(live[i].memory.suspects, replayed[i].memory.suspects);
    same_profiles(live[i].memory.cleared, replayed[i].memory.cleared);
    EXPECT_EQ(live[i].memory.insufficient_data,
              replayed[i].memory.insufficient_data);
  }
}

TEST(StreamingReplayTest, LiveAndReplayedStreamingCurvesAreIdentical) {
  const std::string path = TempPath("fglb_streaming_mrc.fglbcap");
  const double duration = 300;
  const uint64_t seed = 1;

  SelectiveRetuner::Config config;
  config.mrc.mode = MrcMode::kStreaming;
  config.mrc.opt_regret = true;
  ClusterHarness harness(config);
  AssembleConsolidation(&harness, duration, seed);

  CaptureWriter writer(&harness.sim());
  CaptureInfo info;
  info.seed = seed;
  info.scenario = "consolidation";
  info.duration_seconds = duration;
  info.interval_seconds = harness.retuner().config().interval_seconds;
  info.mrc_sample_rate = harness.retuner().config().mrc.sample_rate;
  info.mrc_spec = MrcSpecString(harness.retuner().config().mrc);
  std::string error;
  ASSERT_TRUE(writer.Open(path, info, SnapshotTopology(harness), &error))
      << error;
  harness.AttachRecorders(&writer, &writer);
  harness.Start();
  harness.RunFor(duration);
  ASSERT_TRUE(writer.Finalize(harness.retuner().actions(),
                              harness.retuner().samples()));
  // The run must actually reach phase mrc, or curve identity over an
  // empty diagnosis list would prove nothing.
  ASSERT_FALSE(harness.retuner().diagnoses().empty());

  Capture capture;
  ASSERT_TRUE(ReadCapture(path, &capture, &error)) << error;
  EXPECT_EQ(capture.info.mrc_spec, info.mrc_spec);
  ReplayRunner runner(&capture, ReplayBuildOptions{});
  ASSERT_TRUE(runner.Build(&error)) << error;
  EXPECT_EQ(runner.harness()->retuner().config().mrc.mode,
            MrcMode::kStreaming);
  EXPECT_TRUE(runner.harness()->retuner().config().mrc.opt_regret);
  ASSERT_TRUE(runner.Run(&error)) << error;

  ExpectSameDiagnoses(harness.retuner().diagnoses(),
                      runner.harness()->retuner().diagnoses());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fglb
