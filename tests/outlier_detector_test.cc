#include "core/outlier_detector.h"

#include <gtest/gtest.h>

namespace fglb {
namespace {

constexpr AppId kApp = 1;

MetricVector Uniform(double value) {
  MetricVector v{};
  v.fill(value);
  return v;
}

// Builds a population of `n` classes whose every metric is `baseline`
// in both stable and current state.
struct Population {
  std::map<ClassKey, MetricVector> current;
  StableStateStore stable;

  explicit Population(int n, double baseline = 100.0) {
    for (int i = 1; i <= n; ++i) {
      const ClassKey key = MakeClassKey(kApp, i);
      current[key] = Uniform(baseline);
      stable.Update(key, Uniform(baseline), 0.0);
    }
  }

  void Bump(QueryClassId cls, Metric metric, double value) {
    At(current[MakeClassKey(kApp, cls)], metric) = value;
  }
};

TEST(OutlierDetectorTest, NoChangeNoOutliers) {
  Population pop(10);
  OutlierDetector detector;
  const OutlierReport report = detector.Detect(pop.current, pop.stable);
  EXPECT_FALSE(report.HasOutliers());
  EXPECT_TRUE(report.new_classes.empty());
}

TEST(OutlierDetectorTest, SingleDeviantClassFlagged) {
  Population pop(10);
  pop.Bump(3, Metric::kBufferMisses, 1000.0);  // 10x its stable value
  OutlierDetector detector;
  const OutlierReport report = detector.Detect(pop.current, pop.stable);
  ASSERT_TRUE(report.HasOutliers());
  const auto contexts = report.OutlierContexts();
  EXPECT_TRUE(contexts.contains(MakeClassKey(kApp, 3)));
  EXPECT_EQ(contexts.size(), 1u);
  // It is specifically a memory-problem context.
  EXPECT_TRUE(
      report.MemoryProblemContexts().contains(MakeClassKey(kApp, 3)));
}

TEST(OutlierDetectorTest, ExtremeVsMildDegrees) {
  Population pop(12);
  pop.Bump(2, Metric::kPageAccesses, 100000.0);
  OutlierDetector detector;
  const OutlierReport report = detector.Detect(pop.current, pop.stable);
  bool found_extreme = false;
  for (const auto& o : report.outliers) {
    if (o.key == MakeClassKey(kApp, 2) &&
        o.metric == Metric::kPageAccesses) {
      found_extreme = o.degree == OutlierDegree::kExtreme;
    }
  }
  EXPECT_TRUE(found_extreme);
}

TEST(OutlierDetectorTest, LatencyOutlierIsNotMemoryProblem) {
  Population pop(10);
  pop.Bump(5, Metric::kLatency, 5000.0);
  OutlierDetector detector;
  const OutlierReport report = detector.Detect(pop.current, pop.stable);
  EXPECT_TRUE(report.OutlierContexts().contains(MakeClassKey(kApp, 5)));
  EXPECT_TRUE(report.MemoryProblemContexts().empty());
}

TEST(OutlierDetectorTest, NewClassesReportedSeparately) {
  Population pop(8);
  const ClassKey fresh = MakeClassKey(kApp, 99);
  pop.current[fresh] = Uniform(500.0);
  OutlierDetector detector;
  const OutlierReport report = detector.Detect(pop.current, pop.stable);
  ASSERT_EQ(report.new_classes.size(), 1u);
  EXPECT_EQ(report.new_classes[0], fresh);
  // The new class never enters the fencing population.
  EXPECT_FALSE(report.OutlierContexts().contains(fresh));
}

TEST(OutlierDetectorTest, WeightingSurfacesHeavyweightModerateDeviation) {
  // Class 1 is 50x heavier than the others on buffer misses; it
  // deviates only 2x, the others not at all. With weights the paper's
  // "moderately deviating heavyweight" is an outlier; without weights
  // it is also one (ratio 2 vs 1)... so to isolate the weight effect,
  // give every OTHER class small random jitter making a plain 2x ratio
  // unremarkable.
  std::map<ClassKey, MetricVector> current;
  StableStateStore stable;
  for (int i = 1; i <= 12; ++i) {
    const ClassKey key = MakeClassKey(kApp, i);
    MetricVector base = Uniform(10.0);
    stable.Update(key, base, 0.0);
    MetricVector cur = base;
    // Jitter every class's current misses between 1x and 3x.
    At(cur, Metric::kBufferMisses) = 10.0 * (1.0 + 0.2 * i);
    current[key] = cur;
  }
  // The heavyweight: stable 500, now 1500 (3x, same max ratio as the
  // jittered tail) but 50x the volume.
  const ClassKey heavy = MakeClassKey(kApp, 20);
  MetricVector heavy_stable = Uniform(10.0);
  At(heavy_stable, Metric::kBufferMisses) = 500.0;
  stable.Update(heavy, heavy_stable, 0.0);
  MetricVector heavy_current = heavy_stable;
  At(heavy_current, Metric::kBufferMisses) = 1500.0;
  current[heavy] = heavy_current;

  OutlierConfig weighted;
  weighted.use_weights = true;
  OutlierConfig unweighted;
  unweighted.use_weights = false;
  const OutlierReport with =
      OutlierDetector(weighted).Detect(current, stable);
  const OutlierReport without =
      OutlierDetector(unweighted).Detect(current, stable);
  EXPECT_TRUE(with.MemoryProblemContexts().contains(heavy));
  EXPECT_FALSE(without.MemoryProblemContexts().contains(heavy));
}

TEST(OutlierDetectorTest, TooFewClassesNoFencing) {
  Population pop(3);
  pop.Bump(1, Metric::kBufferMisses, 100000.0);
  OutlierDetector detector;  // min_classes = 4
  const OutlierReport report = detector.Detect(pop.current, pop.stable);
  EXPECT_FALSE(report.HasOutliers());
}

TEST(OutlierDetectorTest, ZeroStableValueCapsRatio) {
  Population pop(10, 100.0);
  const ClassKey key = MakeClassKey(kApp, 4);
  MetricVector zero_stable = Uniform(100.0);
  At(zero_stable, Metric::kReadAheads) = 0.0;
  pop.stable.Update(key, zero_stable, 0.0);
  pop.Bump(4, Metric::kReadAheads, 50.0);
  OutlierDetector detector;
  const OutlierReport report = detector.Detect(pop.current, pop.stable);
  ASSERT_TRUE(report.ratios.at(Metric::kReadAheads).contains(key));
  EXPECT_DOUBLE_EQ(report.ratios.at(Metric::kReadAheads).at(key),
                   detector.config().ratio_cap);
  EXPECT_TRUE(report.MemoryProblemContexts().contains(key));
}

TEST(OutlierDetectorTest, RatiosMatchCurrentOverStable) {
  Population pop(6);
  pop.Bump(2, Metric::kLatency, 250.0);
  OutlierDetector detector;
  const OutlierReport report = detector.Detect(pop.current, pop.stable);
  EXPECT_DOUBLE_EQ(
      report.ratios.at(Metric::kLatency).at(MakeClassKey(kApp, 2)), 2.5);
  EXPECT_DOUBLE_EQ(
      report.ratios.at(Metric::kLatency).at(MakeClassKey(kApp, 1)), 1.0);
}

TEST(OutlierDetectorTest, LowSideOutlierDetected) {
  Population pop(10);
  // Throughput collapse: classic low-side outlier.
  pop.Bump(7, Metric::kThroughput, 1.0);
  OutlierDetector detector;
  const OutlierReport report = detector.Detect(pop.current, pop.stable);
  bool found_low = false;
  for (const auto& o : report.outliers) {
    if (o.key == MakeClassKey(kApp, 7) && !o.high_side) found_low = true;
  }
  EXPECT_TRUE(found_low);
}

TEST(OutlierDetectorTest, FenceMultiplierAblation) {
  // A deviation that is mild at 1.5x IQR disappears with huge fences.
  Population pop(12);
  for (int i = 1; i <= 12; ++i) {
    pop.Bump(i, Metric::kBufferMisses, 100.0 + i);  // small spread
  }
  pop.Bump(6, Metric::kBufferMisses, 160.0);
  OutlierConfig tight;
  OutlierConfig loose;
  loose.mild_fence = 50.0;
  loose.extreme_fence = 100.0;
  const OutlierReport with_tight =
      OutlierDetector(tight).Detect(pop.current, pop.stable);
  const OutlierReport with_loose =
      OutlierDetector(loose).Detect(pop.current, pop.stable);
  EXPECT_TRUE(
      with_tight.OutlierContexts().contains(MakeClassKey(kApp, 6)));
  EXPECT_FALSE(
      with_loose.OutlierContexts().contains(MakeClassKey(kApp, 6)));
}

}  // namespace
}  // namespace fglb
