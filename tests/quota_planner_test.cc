#include "core/quota_planner.h"

#include <gtest/gtest.h>

#include "core/io_interference.h"

namespace fglb {
namespace {

ClassMemoryProfile Profile(QueryClassId cls, uint64_t total,
                           uint64_t acceptable, AppId app = 1) {
  ClassMemoryProfile p;
  p.key = MakeClassKey(app, cls);
  p.params.total_memory_pages = total;
  p.params.acceptable_memory_pages = acceptable;
  p.params.ideal_miss_ratio = 0.01;
  p.params.acceptable_miss_ratio = 0.03;
  return p;
}

TEST(QuotaPlannerTest, PlacementFitsWhenTotalNeedFits) {
  QuotaPlanner planner;
  const auto plan = planner.Plan(8192, {Profile(1, 2000, 1000)},
                                 {Profile(2, 3000, 1500)});
  EXPECT_TRUE(plan.placement_fits);
  EXPECT_TRUE(plan.quotas.empty());
  EXPECT_TRUE(plan.reschedule.empty());
  EXPECT_FALSE(plan.infeasible);
}

TEST(QuotaPlannerTest, QuotasWhenAcceptableFits) {
  QuotaPlanner planner;
  // Total need 6000+7000 > 8192, acceptable 3000+4000 <= 8192.
  const auto plan = planner.Plan(8192, {Profile(1, 6000, 3000)},
                                 {Profile(2, 7000, 4000)});
  EXPECT_FALSE(plan.placement_fits);
  ASSERT_EQ(plan.quotas.size(), 1u);
  EXPECT_EQ(plan.quotas.at(MakeClassKey(1, 1)), 3000u);
  EXPECT_TRUE(plan.reschedule.empty());
}

TEST(QuotaPlannerTest, ReschedulesLargestWhenQuotasDoNotFit) {
  QuotaPlanner planner;
  // Problem classes need 5000 + 2000 acceptable; others 4000.
  // 5000+2000+4000 > 8192, dropping the 5000 one fits.
  const auto plan =
      planner.Plan(8192, {Profile(1, 9000, 5000), Profile(2, 4000, 2000)},
                   {Profile(3, 8000, 4000)});
  ASSERT_EQ(plan.reschedule.size(), 1u);
  EXPECT_EQ(plan.reschedule[0], MakeClassKey(1, 1));
  ASSERT_EQ(plan.quotas.size(), 1u);
  EXPECT_EQ(plan.quotas.at(MakeClassKey(1, 2)), 2000u);
  EXPECT_FALSE(plan.infeasible);
}

TEST(QuotaPlannerTest, AllProblemsRescheduledIfNeeded) {
  QuotaPlanner planner;
  const auto plan =
      planner.Plan(4096, {Profile(1, 9000, 3000), Profile(2, 9000, 3000)},
                   {Profile(3, 6000, 3500)});
  EXPECT_EQ(plan.reschedule.size(), 2u);
  EXPECT_TRUE(plan.quotas.empty());
  EXPECT_FALSE(plan.infeasible);
}

TEST(QuotaPlannerTest, InfeasibleWhenOthersAloneExceedPool) {
  QuotaPlanner planner;
  const auto plan = planner.Plan(
      2048, {Profile(1, 9000, 3000)},
      {Profile(2, 6000, 1500), Profile(3, 6000, 1500)});
  EXPECT_TRUE(plan.infeasible);
}

TEST(QuotaPlannerTest, NoProblemClassesFitsTrivially) {
  QuotaPlanner planner;
  const auto plan = planner.Plan(8192, {}, {Profile(1, 1000, 500)});
  EXPECT_TRUE(plan.placement_fits);
}

TEST(QuotaPlannerTest, FitsOnDestinationTest) {
  EXPECT_TRUE(QuotaPlanner::FitsOn(8192, Profile(1, 9000, 7900), {}));
  EXPECT_FALSE(QuotaPlanner::FitsOn(
      8192, Profile(1, 9000, 7900), {Profile(2, 1000, 500)}));
  EXPECT_TRUE(QuotaPlanner::FitsOn(
      8192, Profile(1, 2000, 1000), {Profile(2, 9000, 7000)}));
}

TEST(IoEvictionTest, NoActionBelowTarget) {
  EXPECT_TRUE(PlanIoEviction({{MakeClassKey(1, 1), 0.2}}, 0.5, 0.6).empty());
}

TEST(IoEvictionTest, EvictsHeaviestFirst) {
  std::map<ClassKey, double> rates = {
      {MakeClassKey(1, 1), 0.05},
      {MakeClassKey(1, 2), 0.60},
      {MakeClassKey(1, 3), 0.10},
  };
  const auto evicted = PlanIoEviction(rates, 0.95, 0.60);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], MakeClassKey(1, 2));
}

TEST(IoEvictionTest, EvictsMultipleUntilTarget) {
  std::map<ClassKey, double> rates = {
      {MakeClassKey(1, 1), 0.30},
      {MakeClassKey(1, 2), 0.30},
      {MakeClassKey(1, 3), 0.30},
  };
  const auto evicted = PlanIoEviction(rates, 0.95, 0.40);
  EXPECT_EQ(evicted.size(), 2u);
}

TEST(IoEvictionTest, IgnoresZeroRateClasses) {
  std::map<ClassKey, double> rates = {
      {MakeClassKey(1, 1), 0.0},
      {MakeClassKey(1, 2), 0.0},
  };
  EXPECT_TRUE(PlanIoEviction(rates, 0.99, 0.50).empty());
}

}  // namespace
}  // namespace fglb
