// Deterministic replay: a capture of a live run, replayed through
// ReplayRunner, must reproduce the controller's decision trace
// byte-for-byte (the --phase=action projection), for a clean scenario
// and for one running under an injected fault schedule. Plus the
// what-if evaluator's agreement with the live controller's choice.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/trace_check.h"
#include "replay/capture.h"
#include "replay/replayer.h"
#include "replay/what_if.h"
#include "scenarios/harness.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Mirrors fglb_sim's consolidation scenario: TPC-W steady plus RUBiS
// stepping in at duration/3 on a shared replica — the canonical
// memory-interference run where the retuner re-places the intruder.
void AssembleConsolidation(ClusterHarness* harness, double duration,
                           uint64_t seed) {
  harness->AddServers(4);
  PhysicalServer* first = harness->resources().servers()[0].get();
  Scheduler* tpcw = harness->AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = harness->AddApplication(MakeRubis(rubis_options));
  Replica* shared = harness->resources().CreateReplica(first, 8192);
  tpcw->AddReplica(shared);
  rubis->AddReplica(shared);
  harness->AddConstantClients(tpcw, 120, seed);
  harness->AddClients(
      rubis,
      std::make_unique<StepLoad>(
          std::vector<std::pair<SimTime, double>>{{duration / 3, 45}}),
      seed + 1);
}

// Mirrors fglb_sim's chaos-replica scenario: consolidation topology
// plus a spare TPC-W replica so a crash degrades rather than zeroes
// capacity.
void AssembleChaos(ClusterHarness* harness, uint64_t seed) {
  harness->AddServers(4);
  PhysicalServer* first = harness->resources().servers()[0].get();
  PhysicalServer* second = harness->resources().servers()[1].get();
  Scheduler* tpcw = harness->AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = harness->AddApplication(MakeRubis(rubis_options));
  Replica* shared = harness->resources().CreateReplica(first, 8192);
  Replica* spare = harness->resources().CreateReplica(second, 8192, 2);
  tpcw->AddReplica(shared);
  tpcw->AddReplica(spare);
  rubis->AddReplica(shared);
  harness->AddConstantClients(tpcw, 120, seed);
  harness->AddConstantClients(rubis, 45, seed + 1);
}

struct LiveRun {
  std::vector<std::string> action_lines;
  size_t action_count = 0;
};

// Runs a live harness with capture attached, returns its action-trace
// projection, and leaves the capture at `capture_path`.
LiveRun RunLive(const std::string& capture_path, const std::string& scenario,
                const std::string& fault_spec, uint64_t seed,
                uint64_t fault_seed, double duration) {
  SelectiveRetuner::Config config;
  if (!fault_spec.empty()) config.max_migrations_per_interval = 2;
  ClusterHarness harness(config);
  harness.trace().EnableBuffering();
  if (scenario == "consolidation") {
    AssembleConsolidation(&harness, duration, seed);
  } else {
    AssembleChaos(&harness, seed);
  }
  if (!fault_spec.empty()) {
    FaultSpec spec;
    std::string fault_error;
    EXPECT_TRUE(FaultSpec::Parse(fault_spec, &spec, &fault_error))
        << fault_error;
    harness.InjectFaults(std::move(spec), fault_seed);
  }

  CaptureWriter writer(&harness.sim());
  CaptureInfo info;
  info.seed = seed;
  info.fault_seed = fault_seed;
  info.scenario = scenario;
  info.fault_spec = fault_spec;
  info.duration_seconds = duration;
  info.interval_seconds = harness.retuner().config().interval_seconds;
  info.mrc_sample_rate = harness.retuner().config().mrc.sample_rate;
  info.max_migrations_per_interval =
      harness.retuner().config().max_migrations_per_interval;
  std::string error;
  EXPECT_TRUE(writer.Open(capture_path, info, SnapshotTopology(harness),
                          &error))
      << error;
  harness.AttachRecorders(&writer, &writer);
  harness.Start();
  harness.RunFor(duration);
  EXPECT_TRUE(
      writer.Finalize(harness.retuner().actions(),
                      harness.retuner().samples()));

  LiveRun result;
  result.action_count = harness.retuner().actions().size();
  EXPECT_TRUE(ActionLines(harness.trace().BufferedLines(),
                          &result.action_lines, &error))
      << error;
  return result;
}

// Replays `capture_path` strictly and returns the replayed run's
// action-trace projection.
std::vector<std::string> RunReplay(const std::string& capture_path,
                                   size_t* actions_out) {
  Capture capture;
  std::string error;
  EXPECT_TRUE(ReadCapture(capture_path, &capture, &error)) << error;
  ReplayRunner runner(&capture, ReplayBuildOptions{});
  EXPECT_TRUE(runner.Build(&error)) << error;
  runner.harness()->trace().EnableBuffering();
  EXPECT_TRUE(runner.Run(&error)) << error;
  EXPECT_EQ(runner.source()->misses(), 0u);
  EXPECT_EQ(runner.source()->remaining(), 0u);
  *actions_out = runner.harness()->retuner().actions().size();
  std::vector<std::string> lines;
  EXPECT_TRUE(ActionLines(runner.harness()->trace().BufferedLines(), &lines,
                          &error))
      << error;
  return lines;
}

TEST(ReplayTest, ConsolidationReplayMatchesLiveActionTrace) {
  const std::string path = TempPath("fglb_replay_consolidation.fglbcap");
  const LiveRun live = RunLive(path, "consolidation", "", 1, 1, 300);
  // The run must actually exercise the controller, or byte-equality of
  // empty traces would prove nothing.
  ASSERT_GT(live.action_count, 0u);
  ASSERT_FALSE(live.action_lines.empty());

  size_t replay_actions = 0;
  const std::vector<std::string> replayed = RunReplay(path, &replay_actions);
  EXPECT_EQ(replay_actions, live.action_count);
  ASSERT_EQ(replayed.size(), live.action_lines.size());
  for (size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i], live.action_lines[i]) << "action line " << i;
  }
  std::remove(path.c_str());
}

TEST(ReplayTest, ChaosReplayWithFaultSpecMatchesLiveActionTrace) {
  const std::string path = TempPath("fglb_replay_chaos.fglbcap");
  const std::string fault_spec =
      "crash@100:replica=1,restart=60;"
      "stats@150:replica=0,mode=partial,duration=60";
  const LiveRun live = RunLive(path, "chaos-replica", fault_spec, 1, 7, 300);
  ASSERT_FALSE(live.action_lines.empty());

  size_t replay_actions = 0;
  const std::vector<std::string> replayed = RunReplay(path, &replay_actions);
  EXPECT_EQ(replay_actions, live.action_count);
  ASSERT_EQ(replayed.size(), live.action_lines.size());
  for (size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i], live.action_lines[i]) << "action line " << i;
  }
  std::remove(path.c_str());
}

TEST(ReplayTest, ReplayedActionLogMatchesCaptureActions) {
  const std::string path = TempPath("fglb_replay_actions.fglbcap");
  RunLive(path, "consolidation", "", 3, 1, 300);
  Capture capture;
  std::string error;
  ASSERT_TRUE(ReadCapture(path, &capture, &error)) << error;
  ReplayRunner runner(&capture, ReplayBuildOptions{});
  ASSERT_TRUE(runner.Run(&error)) << error;
  const auto& replayed = runner.harness()->retuner().actions();
  ASSERT_EQ(replayed.size(), capture.actions.size());
  for (size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i].time, capture.actions[i].t);
    EXPECT_EQ(static_cast<uint8_t>(replayed[i].kind), capture.actions[i].kind);
    EXPECT_EQ(replayed[i].app, capture.actions[i].app);
    EXPECT_EQ(replayed[i].description, capture.actions[i].description);
  }
  std::remove(path.c_str());
}

TEST(ReplayTest, WhatIfRanksCandidatesAndAgreesWithLiveController) {
  const std::string path = TempPath("fglb_replay_whatif.fglbcap");
  RunLive(path, "consolidation", "", 1, 1, 300);
  Capture capture;
  std::string error;
  ASSERT_TRUE(ReadCapture(path, &capture, &error)) << error;

  WhatIfRunner runner(&capture, WhatIfOptions{});
  WhatIfResult result;
  ASSERT_TRUE(runner.Run(&result, &error)) << error;

  ASSERT_EQ(result.candidates.size(), 3u);
  // Ranked best-first, no-op anchored at score 0.
  for (size_t i = 1; i < result.candidates.size(); ++i) {
    EXPECT_GE(result.candidates[i - 1].score, result.candidates[i].score);
  }
  for (const WhatIfCandidate& c : result.candidates) {
    if (c.name == "noop") {
      EXPECT_DOUBLE_EQ(c.score, 0.0);
    }
  }
  // On the consolidation interference window the re-placement must win
  // offline — and match what the live SelectiveRetuner actually did.
  EXPECT_EQ(result.candidates[0].name, "migrate");
  EXPECT_EQ(result.live_choice, "migrate");
  EXPECT_TRUE(result.agrees_with_live);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fglb
