#include "cluster/lock_manager.h"

#include <gtest/gtest.h>

#include "cluster/replica.h"
#include "cluster/resource_manager.h"
#include "engine/metrics.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

PageId Stripe(uint64_t n) { return MakePageId(1, n); }

TEST(LockManagerTest, UncontendedGrantIsImmediate) {
  Simulator sim;
  LockManager locks(&sim);
  double wait = -1;
  locks.AcquireAll({Stripe(1), Stripe(2)},
                   [&](double w) { wait = w; });
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(wait, 0.0);
  EXPECT_EQ(locks.held_stripes(), 2u);
  EXPECT_EQ(locks.granted_total(), 1u);
}

TEST(LockManagerTest, ReleaseFreesStripes) {
  Simulator sim;
  LockManager locks(&sim);
  uint64_t ticket = locks.AcquireAll({Stripe(1)}, [](double) {});
  sim.RunToCompletion();
  locks.Release(ticket);
  EXPECT_EQ(locks.held_stripes(), 0u);
}

TEST(LockManagerTest, ConflictingRequestWaits) {
  Simulator sim;
  LockManager locks(&sim);
  uint64_t first = locks.AcquireAll({Stripe(7)}, [](double) {});
  double second_wait = -1;
  bool second_granted = false;
  locks.AcquireAll({Stripe(7)}, [&](double w) {
    second_wait = w;
    second_granted = true;
  });
  sim.RunUntil(5.0);
  EXPECT_FALSE(second_granted);
  // Holder releases at t = 5.
  locks.Release(first);
  sim.RunToCompletion();
  EXPECT_TRUE(second_granted);
  EXPECT_DOUBLE_EQ(second_wait, 5.0);
  EXPECT_DOUBLE_EQ(locks.total_wait_seconds(), 5.0);
}

TEST(LockManagerTest, FifoFairnessPerStripe) {
  Simulator sim;
  LockManager locks(&sim);
  std::vector<int> order;
  uint64_t holder = locks.AcquireAll({Stripe(1)}, [](double) {});
  std::vector<uint64_t> tickets(3);
  for (int i = 0; i < 3; ++i) {
    tickets[i] = locks.AcquireAll({Stripe(1)}, [&order, i](double) {
      order.push_back(i);
    });
  }
  sim.RunToCompletion();
  EXPECT_TRUE(order.empty());
  locks.Release(holder);
  sim.RunToCompletion();
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 0);
  locks.Release(tickets[0]);
  sim.RunToCompletion();
  locks.Release(tickets[1]);
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(LockManagerTest, PartialOverlapBlocksOnlyOnConflict) {
  Simulator sim;
  LockManager locks(&sim);
  uint64_t holder = locks.AcquireAll({Stripe(2)}, [](double) {});
  bool granted = false;
  // Wants {1, 2}: gets 1 immediately, blocks on 2.
  locks.AcquireAll({Stripe(1), Stripe(2)}, [&](double) { granted = true; });
  sim.RunToCompletion();
  EXPECT_FALSE(granted);
  EXPECT_EQ(locks.held_stripes(), 2u);  // stripe 1 held by the waiter
  locks.Release(holder);
  sim.RunToCompletion();
  EXPECT_TRUE(granted);
}

TEST(LockManagerTest, DisjointSetsNeverBlock) {
  Simulator sim;
  LockManager locks(&sim);
  int granted = 0;
  locks.AcquireAll({Stripe(1), Stripe(2)}, [&](double) { ++granted; });
  locks.AcquireAll({Stripe(3), Stripe(4)}, [&](double) { ++granted; });
  sim.RunToCompletion();
  EXPECT_EQ(granted, 2);
}

// Sorted-order acquisition means two requests with overlapping sets
// cannot deadlock: whoever wins the lowest common stripe finishes.
TEST(LockManagerTest, OverlappingSetsNoDeadlock) {
  Simulator sim;
  LockManager locks(&sim);
  std::vector<uint64_t> tickets;
  int granted = 0;
  auto chain = [&](std::vector<PageId> stripes) {
    tickets.push_back(0);
    size_t slot = tickets.size() - 1;
    tickets[slot] = locks.AcquireAll(stripes, [&, slot](double) {
      ++granted;
      sim.ScheduleAfter(1.0, [&, slot] { locks.Release(tickets[slot]); });
    });
  };
  chain({Stripe(1), Stripe(2), Stripe(3)});
  chain({Stripe(2), Stripe(3), Stripe(4)});
  chain({Stripe(1), Stripe(4)});
  sim.RunToCompletion();
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(locks.held_stripes(), 0u);
}

TEST(ReplicaLockTest, UpdateQueriesRecordLockWaits) {
  Simulator sim;
  ResourceManager resources(&sim);
  PhysicalServer* server = resources.AddServer({});
  Replica* replica = resources.CreateReplica(server, 4096);
  const ApplicationSpec app = MakeTpcw();

  // Two identical updates submitted back to back: the second commits
  // after the first and may wait on shared stripes.
  QueryInstance q;
  q.app = app.id;
  q.tmpl = app.FindTemplate(kTpcwBuyConfirm);
  double total_wait = 0;
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    replica->Run(q, [&](double, const ExecutionCounters& c) {
      ++completed;
      total_wait += c.lock_wait_seconds;
      EXPECT_FALSE(c.write_stripes.empty());
      EXPECT_GT(c.commit_seconds, 0.0);
    });
  }
  sim.RunToCompletion();
  EXPECT_EQ(completed, 20);
  EXPECT_GT(replica->locks().granted_total(), 0u);
  EXPECT_GE(total_wait, 0.0);
}

TEST(ReplicaLockTest, ReadOnlyQueriesNeverLock) {
  Simulator sim;
  ResourceManager resources(&sim);
  PhysicalServer* server = resources.AddServer({});
  Replica* replica = resources.CreateReplica(server, 4096);
  const ApplicationSpec app = MakeTpcw();
  QueryInstance q;
  q.app = app.id;
  q.tmpl = app.FindTemplate(kTpcwHome);
  replica->Run(q, [&](double, const ExecutionCounters& c) {
    EXPECT_TRUE(c.write_stripes.empty());
    EXPECT_DOUBLE_EQ(c.lock_wait_seconds, 0.0);
  });
  sim.RunToCompletion();
  EXPECT_EQ(replica->locks().granted_total(), 0u);
}

TEST(ReplicaLockTest, LockWaitsSurfaceInClassMetrics) {
  Simulator sim;
  ResourceManager resources(&sim);
  PhysicalServer* server = resources.AddServer({});
  Replica* replica = resources.CreateReplica(server, 4096);
  ApplicationSpec app = MakeTpcw();
  // Make the commit hold pathologically long so waits are guaranteed.
  for (auto& tmpl : app.templates) tmpl.commit_hold_seconds = 0.5;
  QueryInstance q;
  q.app = app.id;
  q.tmpl = app.FindTemplate(kTpcwBuyConfirm);
  for (int i = 0; i < 10; ++i) replica->Run(q, nullptr);
  sim.RunToCompletion();
  auto snap = replica->engine().stats().EndInterval(10.0);
  const ClassKey key = MakeClassKey(app.id, kTpcwBuyConfirm);
  ASSERT_TRUE(snap.contains(key));
  EXPECT_GT(At(snap[key], Metric::kLockWaits), 0.0);
}

}  // namespace
}  // namespace fglb
