#include "common/trace_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/json.h"

namespace fglb {
namespace {

JsonValue MustParse(const std::string& line) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(JsonValue::Parse(line, &value, &error))
      << error << " in: " << line;
  return value;
}

TEST(TraceLogTest, DisabledByDefaultAndEmitIsNoOp) {
  TraceLog log;
  EXPECT_FALSE(log.enabled());
  log.Emit(TraceEvent("sla"));
  EXPECT_EQ(log.events_emitted(), 0u);
  EXPECT_TRUE(log.BufferedLines().empty());
}

TEST(TraceLogTest, BufferedEventsCarryHeaderAndSequence) {
  TraceLog log;
  log.EnableBuffering();
  ASSERT_TRUE(log.enabled());
  log.Emit(TraceEvent("sla").Num("t", 30));
  log.Emit(TraceEvent("action").Str("kind", "none"));
  EXPECT_EQ(log.events_emitted(), 2u);

  const std::vector<std::string> lines = log.BufferedLines();
  ASSERT_EQ(lines.size(), 2u);
  for (size_t i = 0; i < lines.size(); ++i) {
    const JsonValue event = MustParse(lines[i]);
    EXPECT_DOUBLE_EQ(event.NumberOr("v", -1), TraceLog::kSchemaVersion);
    EXPECT_DOUBLE_EQ(event.NumberOr("seq", -1),
                     static_cast<double>(i));
    EXPECT_NE(event.Find("mono_us"), nullptr);
    EXPECT_GE(event.NumberOr("mono_us", -1), 0);
  }
  EXPECT_EQ(MustParse(lines[0]).StringOr("phase", ""), "sla");
  EXPECT_EQ(MustParse(lines[1]).StringOr("phase", ""), "action");
}

TEST(TraceLogTest, AllFieldTypesRoundTrip) {
  TraceLog log;
  log.EnableBuffering();
  log.Emit(TraceEvent("iqr")
               .Str("name", "metric \"latency\"\nline2\t\\end")
               .Num("ratio", 1.53125)
               .Int("delta", -42)
               .Uint("big", 12345678901234567890ull)
               .Bool("high", true)
               .Bool("low", false)
               .Raw("fences", "[{\"q1\":1,\"q3\":3}]"));
  const std::vector<std::string> lines = log.BufferedLines();
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue event = MustParse(lines[0]);
  EXPECT_EQ(event.StringOr("name", ""), "metric \"latency\"\nline2\t\\end");
  EXPECT_DOUBLE_EQ(event.NumberOr("ratio", 0), 1.53125);
  EXPECT_DOUBLE_EQ(event.NumberOr("delta", 0), -42);
  // %.17g-free path: Uint is emitted as an integer literal; the parsed
  // double is the nearest representable value.
  EXPECT_NEAR(event.NumberOr("big", 0), 12345678901234567890.0, 1e4);
  EXPECT_TRUE(event.BoolOr("high", false));
  EXPECT_FALSE(event.BoolOr("low", true));
  const JsonValue* fences = event.Find("fences");
  ASSERT_NE(fences, nullptr);
  ASSERT_TRUE(fences->is_array());
  ASSERT_EQ(fences->array.size(), 1u);
  EXPECT_DOUBLE_EQ(fences->array[0].NumberOr("q1", 0), 1);
  EXPECT_DOUBLE_EQ(fences->array[0].NumberOr("q3", 0), 3);
}

TEST(TraceLogTest, CloseDisablesFileModeEmission) {
  const std::string path = ::testing::TempDir() + "/fglb_trace_close.jsonl";
  TraceLog log;
  std::string error;
  ASSERT_TRUE(log.OpenFile(path, &error)) << error;
  log.Emit(TraceEvent("sla"));
  log.Close();
  EXPECT_FALSE(log.enabled());
  log.Emit(TraceEvent("sla"));
  EXPECT_EQ(log.events_emitted(), 1u);
  std::remove(path.c_str());
}

TEST(TraceLogTest, FileModeWritesOneJsonObjectPerLine) {
  const std::string path = ::testing::TempDir() + "/fglb_trace_test.jsonl";
  {
    TraceLog log;
    std::string error;
    ASSERT_TRUE(log.OpenFile(path, &error)) << error;
    log.Emit(TraceEvent("sla").Num("t", 30).Bool("sla_met", false));
    log.Emit(TraceEvent("mrc").Num("dur_us", 12.5));
    log.Close();
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::vector<std::string> lines;
  std::string current;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(static_cast<char>(c));
    }
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(current.empty());  // file ends with a newline
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue first = MustParse(lines[0]);
  EXPECT_EQ(first.StringOr("phase", ""), "sla");
  EXPECT_FALSE(first.BoolOr("sla_met", true));
  const JsonValue second = MustParse(lines[1]);
  EXPECT_EQ(second.StringOr("phase", ""), "mrc");
  EXPECT_DOUBLE_EQ(second.NumberOr("dur_us", 0), 12.5);
  EXPECT_DOUBLE_EQ(second.NumberOr("seq", -1), 1);
}

TEST(TraceLogTest, OpenFileFailureReportsError) {
  TraceLog log;
  std::string error;
  EXPECT_FALSE(log.OpenFile("/nonexistent-dir/zzz/trace.jsonl", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(log.enabled());
}

}  // namespace
}  // namespace fglb
