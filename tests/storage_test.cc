#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include "storage/disk_model.h"
#include "storage/page.h"
#include "storage/partitioned_buffer_pool.h"

namespace fglb {
namespace {

TEST(PageIdTest, PacksAndUnpacks) {
  const PageId p = MakePageId(7, 123456789);
  EXPECT_EQ(TableOf(p), 7);
  EXPECT_EQ(OffsetOf(p), 123456789u);
}

TEST(PageIdTest, DistinctTablesNeverCollide) {
  EXPECT_NE(MakePageId(1, 5), MakePageId(2, 5));
  EXPECT_NE(MakePageId(1, 0), MakePageId(0, 0));
}

TEST(BufferPoolTest, MissThenHit) {
  BufferPool pool(4);
  EXPECT_FALSE(pool.Access(MakePageId(1, 1)));
  EXPECT_TRUE(pool.Access(MakePageId(1, 1)));
  EXPECT_EQ(pool.stats().accesses, 2u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(2);
  pool.Access(MakePageId(1, 1));
  pool.Access(MakePageId(1, 2));
  pool.Access(MakePageId(1, 1));  // refresh page 1
  pool.Access(MakePageId(1, 3));  // evicts page 2
  EXPECT_TRUE(pool.Contains(MakePageId(1, 1)));
  EXPECT_FALSE(pool.Contains(MakePageId(1, 2)));
  EXPECT_TRUE(pool.Contains(MakePageId(1, 3)));
  EXPECT_EQ(pool.stats().evictions, 1u);
}

TEST(BufferPoolTest, CapacityRespected) {
  BufferPool pool(8);
  for (uint64_t i = 0; i < 100; ++i) pool.Access(MakePageId(1, i));
  EXPECT_EQ(pool.resident_pages(), 8u);
}

TEST(BufferPoolTest, ZeroCapacityAlwaysMisses) {
  BufferPool pool(0);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(pool.Access(MakePageId(1, 1)));
  EXPECT_EQ(pool.resident_pages(), 0u);
  EXPECT_FALSE(pool.Insert(MakePageId(1, 2)));
}

TEST(BufferPoolTest, ResizeShrinkEvicts) {
  BufferPool pool(4);
  for (uint64_t i = 0; i < 4; ++i) pool.Access(MakePageId(1, i));
  pool.Resize(2);
  EXPECT_EQ(pool.resident_pages(), 2u);
  // The two most recently used survive.
  EXPECT_TRUE(pool.Contains(MakePageId(1, 2)));
  EXPECT_TRUE(pool.Contains(MakePageId(1, 3)));
}

TEST(BufferPoolTest, InsertDoesNotCountAccess) {
  BufferPool pool(4);
  EXPECT_TRUE(pool.Insert(MakePageId(1, 9)));
  EXPECT_EQ(pool.stats().accesses, 0u);
  EXPECT_EQ(pool.stats().prefetch_inserts, 1u);
  EXPECT_TRUE(pool.Access(MakePageId(1, 9)));  // prefetched page hits
}

TEST(BufferPoolTest, InsertExistingIsNoop) {
  BufferPool pool(4);
  pool.Access(MakePageId(1, 1));
  EXPECT_FALSE(pool.Insert(MakePageId(1, 1)));
  EXPECT_EQ(pool.stats().prefetch_inserts, 0u);
}

TEST(BufferPoolTest, ClearKeepsCounters) {
  BufferPool pool(4);
  pool.Access(MakePageId(1, 1));
  pool.Clear();
  EXPECT_EQ(pool.resident_pages(), 0u);
  EXPECT_EQ(pool.stats().accesses, 1u);
}

TEST(BufferPoolTest, LruOrderUnderMixedInsertAccess) {
  BufferPool pool(3);
  pool.Access(MakePageId(1, 1));
  pool.Insert(MakePageId(1, 2));
  pool.Access(MakePageId(1, 3));
  // MRU order: 3, 2, 1... Insert puts at MRU, then 3 accessed after.
  pool.Access(MakePageId(1, 4));  // evicts LRU = 1
  EXPECT_FALSE(pool.Contains(MakePageId(1, 1)));
  EXPECT_TRUE(pool.Contains(MakePageId(1, 2)));
}

TEST(PartitionedPoolTest, SharedByDefault) {
  PartitionedBufferPool pool(4);
  EXPECT_EQ(pool.shared_capacity(), 4u);
  EXPECT_FALSE(pool.Access(10, MakePageId(1, 1)));
  EXPECT_TRUE(pool.Access(11, MakePageId(1, 1)));  // same shared region
}

TEST(PartitionedPoolTest, QuotaCarvesOutShared) {
  PartitionedBufferPool pool(10);
  EXPECT_TRUE(pool.SetQuota(42, 4));
  EXPECT_EQ(pool.shared_capacity(), 6u);
  EXPECT_EQ(pool.QuotaOf(42), 4u);
  EXPECT_TRUE(pool.HasQuota(42));
}

TEST(PartitionedPoolTest, QuotaIsolation) {
  PartitionedBufferPool pool(4);
  ASSERT_TRUE(pool.SetQuota(1, 2));
  // Key 1's pages live in its partition; key 2's in shared. The same
  // page id is tracked independently per partition.
  pool.Access(1, MakePageId(1, 5));
  EXPECT_FALSE(pool.Access(2, MakePageId(1, 5)));
  EXPECT_TRUE(pool.Access(1, MakePageId(1, 5)));
}

TEST(PartitionedPoolTest, OverCommitRejected) {
  PartitionedBufferPool pool(10);
  EXPECT_TRUE(pool.SetQuota(1, 6));
  EXPECT_FALSE(pool.SetQuota(2, 5));
  EXPECT_EQ(pool.QuotaOf(2), 0u);
  EXPECT_TRUE(pool.SetQuota(2, 4));
}

TEST(PartitionedPoolTest, ResizeExistingQuota) {
  PartitionedBufferPool pool(10);
  ASSERT_TRUE(pool.SetQuota(1, 6));
  EXPECT_TRUE(pool.SetQuota(1, 8));  // grow within capacity
  EXPECT_EQ(pool.QuotaOf(1), 8u);
  EXPECT_EQ(pool.shared_capacity(), 2u);
}

TEST(PartitionedPoolTest, DropQuotaReturnsCapacity) {
  PartitionedBufferPool pool(10);
  ASSERT_TRUE(pool.SetQuota(1, 6));
  pool.DropQuota(1);
  EXPECT_FALSE(pool.HasQuota(1));
  EXPECT_EQ(pool.shared_capacity(), 10u);
}

TEST(PartitionedPoolTest, StatsPerPartition) {
  PartitionedBufferPool pool(8);
  ASSERT_TRUE(pool.SetQuota(1, 4));
  pool.Access(1, MakePageId(1, 1));
  pool.Access(2, MakePageId(1, 2));
  pool.Access(2, MakePageId(1, 2));
  EXPECT_EQ(pool.StatsOf(1).accesses, 1u);
  EXPECT_EQ(pool.StatsOf(2).accesses, 2u);
  EXPECT_EQ(pool.StatsOf(2).hits, 1u);
}

TEST(PartitionedPoolTest, SharedEvictionDoesNotTouchDedicated) {
  PartitionedBufferPool pool(6);
  ASSERT_TRUE(pool.SetQuota(1, 2));
  pool.Access(1, MakePageId(1, 100));
  // Flood the shared region (capacity 4).
  for (uint64_t i = 0; i < 50; ++i) pool.Access(2, MakePageId(2, i));
  EXPECT_TRUE(pool.Contains(1, MakePageId(1, 100)));
}

TEST(DiskModelTest, ServiceDemandComposition) {
  DiskModel disk;
  disk.random_read_seconds = 0.004;
  disk.extent_read_seconds = 0.008;
  disk.page_write_seconds = 0.002;
  EXPECT_DOUBLE_EQ(disk.ServiceDemand(0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(disk.ServiceDemand(10, 2, 5),
                   10 * 0.004 + 2 * 0.008 + 5 * 0.002);
}

}  // namespace
}  // namespace fglb
