#include "scenarios/harness.h"

#include <gtest/gtest.h>

#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

using ActionKind = SelectiveRetuner::ActionKind;

int CountActions(const SelectiveRetuner& retuner, ActionKind kind) {
  int count = 0;
  for (const auto& a : retuner.actions()) count += (a.kind == kind);
  return count;
}

TEST(IntegrationTest, StableModerateLoadStaysWithinSla) {
  ClusterHarness h;
  h.AddServers(2);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  ASSERT_NE(r, nullptr);
  tpcw->AddReplica(r);
  h.AddConstantClients(tpcw, 10, /*seed=*/1);
  h.Start();
  h.RunFor(300);

  const auto summary = h.Summarize(tpcw->app().id, 100, 300);
  EXPECT_GT(summary.queries, 500u);
  EXPECT_LT(summary.avg_latency, tpcw->app().sla_latency_seconds);
  EXPECT_EQ(summary.sla_violations, 0);
  // Nothing for the controller to do.
  EXPECT_EQ(CountActions(h.retuner(), ActionKind::kClassRescheduled), 0);
  EXPECT_EQ(CountActions(h.retuner(), ActionKind::kCoarseFallback), 0);
}

TEST(IntegrationTest, BootstrapProvisionsFirstReplica) {
  ClusterHarness h;
  h.AddServers(2);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  h.AddConstantClients(tpcw, 5, /*seed=*/2);
  h.Start();
  h.RunFor(120);
  EXPECT_GE(tpcw->replicas().size(), 1u);
  EXPECT_GE(CountActions(h.retuner(), ActionKind::kCpuProvision), 1);
  // After bootstrap the app serves within SLA.
  const auto summary = h.Summarize(tpcw->app().id, 60, 120);
  EXPECT_LT(summary.avg_latency, tpcw->app().sla_latency_seconds);
}

TEST(IntegrationTest, LoadBurstProvisionsMoreServers) {
  ClusterHarness h;
  h.AddServers(5);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  // Modest load for 200s, then a burst past one server's capacity.
  h.AddClients(tpcw,
               std::make_unique<StepLoad>(
                   std::vector<std::pair<SimTime, double>>{{0, 50},
                                                           {200, 800}}),
               /*seed=*/3);
  h.Start();
  h.RunFor(600);

  // The burst saturates whichever resource binds first (CPU or the
  // I/O channel); either way reactive provisioning must kick in.
  EXPECT_GE(CountActions(h.retuner(), ActionKind::kCpuProvision) +
                CountActions(h.retuner(), ActionKind::kIoProvision),
            1);
  EXPECT_GE(h.resources().ServersUsedBy(*tpcw), 2);
  // Latency recovers below the SLA once capacity catches up.
  const auto late = h.Summarize(tpcw->app().id, 450, 600);
  EXPECT_LT(late.avg_latency, tpcw->app().sla_latency_seconds);
}

TEST(IntegrationTest, LoadDropReleasesServers) {
  ClusterHarness h;
  h.AddServers(5);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.AddClients(tpcw,
               std::make_unique<StepLoad>(
                   std::vector<std::pair<SimTime, double>>{{0, 800},
                                                           {400, 10}}),
               /*seed=*/4);
  h.Start();
  h.RunFor(900);
  const int peak_servers = [&] {
    int peak = 0;
    for (const auto& s : h.retuner().samples()) {
      for (const auto& as : s.apps) peak = std::max(peak, as.servers_used);
    }
    return peak;
  }();
  EXPECT_GE(peak_servers, 2);
  EXPECT_GE(CountActions(h.retuner(), ActionKind::kCpuRelease), 1);
  EXPECT_LT(h.resources().ServersUsedBy(*tpcw), peak_servers);
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  auto run = [] {
    ClusterHarness h;
    h.AddServers(3);
    Scheduler* tpcw = h.AddApplication(MakeTpcw());
    Replica* r = h.resources().CreateReplica(
        h.resources().servers()[0].get(), 8192);
    tpcw->AddReplica(r);
    h.AddConstantClients(tpcw, 40, /*seed=*/7);
    h.Start();
    h.RunFor(200);
    return std::make_tuple(tpcw->total_completed(),
                           h.retuner().actions().size(),
                           h.retuner().samples().size());
  };
  EXPECT_EQ(run(), run());
}

TEST(IntegrationTest, SharedEngineInterferenceTriggersFineGrainedAction) {
  // The Table 2 situation in miniature: TPC-W stabilizes alone in one
  // engine; RUBiS then joins the same engine and wrecks the buffer
  // pool; the controller responds with a fine-grained action (quota or
  // re-placement) rather than coarse provisioning first.
  SelectiveRetuner::Config config;
  ClusterHarness h(config);
  h.AddServers(3);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = h.AddApplication(MakeRubis(rubis_options));
  Replica* shared = h.resources().CreateReplica(
      h.resources().servers()[0].get(), 8192);
  tpcw->AddReplica(shared);
  rubis->AddReplica(shared);

  h.AddConstantClients(tpcw, 30, /*seed=*/11);
  h.Start();
  h.RunFor(400);  // TPC-W alone, stable baselines form

  // RUBiS arrives in the shared engine.
  h.AddClients(rubis,
               std::make_unique<StepLoad>(
                   std::vector<std::pair<SimTime, double>>{{400, 30}}),
               /*seed=*/13);
  h.RunFor(500);

  const int fine = CountActions(h.retuner(), ActionKind::kQuotaEnforced) +
                   CountActions(h.retuner(), ActionKind::kClassRescheduled) +
                   CountActions(h.retuner(), ActionKind::kIoEviction);
  EXPECT_GE(fine, 1);
}

}  // namespace
}  // namespace fglb
