#include <gtest/gtest.h>

#include "scenarios/harness.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

// The paper's §7 lists "the application workload mix ... may change
// over time" among the dynamic changes the system must absorb. Shift
// TPC-W from the shopping mix to the write-heavy ordering mix mid-run
// and check the system keeps serving, and that the shift is visible in
// the per-class throughput ratios of the next diagnosis (if one runs).
TEST(MixShiftTest, ShoppingToOrderingAbsorbed) {
  ClusterHarness h;
  h.AddServers(3);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.AddConstantClients(tpcw, 100, /*seed=*/71);
  h.Start();
  h.RunFor(400);
  const auto before = h.Summarize(tpcw->app().id, 200, 400);

  // Swap the mix in place: same templates, ordering weights.
  TpcwOptions ordering;
  ordering.mix = TpcwMix::kOrdering;
  const ApplicationSpec shifted = MakeTpcw(ordering);
  ApplicationSpec* live = h.mutable_app(tpcw);
  live->mix_weights = shifted.mix_weights;

  h.RunFor(400);
  const auto after = h.Summarize(tpcw->app().id, 450, 800);

  // Service continues at a comparable level.
  EXPECT_GT(after.queries, before.queries / 2);
  EXPECT_GT(after.avg_throughput, 0.3 * before.avg_throughput);
  // Run is complete and deterministic enough to be asserted on at all.
  EXPECT_EQ(h.retuner().samples().size(), 80u);
}

TEST(MixShiftTest, WriteHeavyMixIncreasesCommitActivity) {
  auto locks_granted = [](TpcwMix mix) {
    ClusterHarness h;
    h.AddServers(1);
    TpcwOptions options;
    options.mix = mix;
    Scheduler* tpcw = h.AddApplication(MakeTpcw(options));
    Replica* r = h.resources().CreateReplica(
        h.resources().servers()[0].get(), 8192);
    tpcw->AddReplica(r);
    h.AddConstantClients(tpcw, 40, /*seed=*/73);
    h.Start();
    h.RunFor(200);
    return r->locks().granted_total();
  };
  const uint64_t browsing = locks_granted(TpcwMix::kBrowsing);
  const uint64_t ordering = locks_granted(TpcwMix::kOrdering);
  EXPECT_GT(ordering, 3 * browsing);
}

}  // namespace
}  // namespace fglb
