#include "storage/clock_buffer_pool.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/buffer_pool.h"

namespace fglb {
namespace {

TEST(ClockPoolTest, MissThenHit) {
  ClockBufferPool pool(4);
  EXPECT_FALSE(pool.Access(MakePageId(1, 1)));
  EXPECT_TRUE(pool.Access(MakePageId(1, 1)));
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(ClockPoolTest, CapacityRespected) {
  ClockBufferPool pool(8);
  for (uint64_t i = 0; i < 100; ++i) pool.Access(MakePageId(1, i));
  EXPECT_EQ(pool.resident_pages(), 8u);
  EXPECT_EQ(pool.stats().evictions, 92u);
}

TEST(ClockPoolTest, ZeroCapacityAlwaysMisses) {
  ClockBufferPool pool(0);
  EXPECT_FALSE(pool.Access(MakePageId(1, 1)));
  EXPECT_FALSE(pool.Access(MakePageId(1, 1)));
  EXPECT_FALSE(pool.Insert(MakePageId(1, 2)));
  EXPECT_EQ(pool.resident_pages(), 0u);
}

TEST(ClockPoolTest, SecondChanceProtectsReferencedPage) {
  ClockBufferPool pool(2);
  pool.Access(MakePageId(1, 1));  // frame 0, referenced
  pool.Access(MakePageId(1, 2));  // frame 1, referenced
  pool.Access(MakePageId(1, 1));  // re-reference page 1
  // Miss: hand sweeps, clears both bits... page 1 was re-referenced but
  // both entered referenced; the hand clears 0 then 1 then evicts 0.
  pool.Access(MakePageId(1, 3));
  EXPECT_EQ(pool.resident_pages(), 2u);
  // Page 3 resident; exactly one of 1/2 was evicted.
  EXPECT_TRUE(pool.Contains(MakePageId(1, 3)));
  // Exactly one of pages 1/2 survived.
  EXPECT_NE(pool.Contains(MakePageId(1, 1)),
            pool.Contains(MakePageId(1, 2)));
}

TEST(ClockPoolTest, PrefetchedPagesAreFirstVictims) {
  ClockBufferPool pool(3);
  pool.Access(MakePageId(1, 1));
  pool.Access(MakePageId(1, 2));
  EXPECT_TRUE(pool.Insert(MakePageId(1, 3)));  // unreferenced
  // A miss should evict the unreferenced prefetched page, not the
  // referenced ones.
  pool.Access(MakePageId(1, 4));
  EXPECT_TRUE(pool.Contains(MakePageId(1, 1)));
  EXPECT_TRUE(pool.Contains(MakePageId(1, 2)));
  EXPECT_FALSE(pool.Contains(MakePageId(1, 3)));
}

TEST(ClockPoolTest, InsertExistingIsNoop) {
  ClockBufferPool pool(4);
  pool.Access(MakePageId(1, 1));
  EXPECT_FALSE(pool.Insert(MakePageId(1, 1)));
  EXPECT_EQ(pool.stats().prefetch_inserts, 0u);
}

// CLOCK approximates LRU: on skewed traces its hit ratio should be in
// the same ballpark, though not identical (no inclusion property).
TEST(ClockPoolTest, HitRatioComparableToLruOnZipf) {
  Rng rng(42);
  ZipfGenerator zipf(2000, 0.9);
  BufferPool lru(256);
  ClockBufferPool clock(256);
  for (int i = 0; i < 50000; ++i) {
    const PageId p =
        MakePageId(1, ScrambleToDomain(zipf.Sample(rng), 2000));
    lru.Access(p);
    clock.Access(p);
  }
  const double lru_hr = lru.stats().hit_ratio();
  const double clock_hr = clock.stats().hit_ratio();
  EXPECT_NEAR(clock_hr, lru_hr, 0.05);
  EXPECT_GT(clock_hr, 0.3);
}

// On a looping scan slightly larger than the cache, both policies
// degenerate to the same complete thrash (with every resident page
// referenced, CLOCK's sweep behaves like FIFO, which equals LRU on a
// loop). The *divergence* between the policies on realistic mixed
// traces is quantified by bench_ablation_replacement.
TEST(ClockPoolTest, LoopThrashesBothPolicies) {
  const uint64_t region = 300;
  BufferPool lru(256);
  ClockBufferPool clock(256);
  for (int rep = 0; rep < 50; ++rep) {
    for (uint64_t i = 0; i < region; ++i) {
      lru.Access(MakePageId(1, i));
      clock.Access(MakePageId(1, i));
    }
  }
  EXPECT_GT(lru.stats().miss_ratio(), 0.95);
  EXPECT_GT(clock.stats().miss_ratio(), 0.95);
}

}  // namespace
}  // namespace fglb
