#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "core/outlier_detector.h"

namespace fglb {
namespace {

constexpr AppId kApp = 1;

// Randomized populations for property checks.
struct Population {
  std::map<ClassKey, MetricVector> current;
  StableStateStore stable;
};

Population RandomPopulation(int classes, uint64_t seed) {
  Population pop;
  Rng rng(seed);
  for (int i = 1; i <= classes; ++i) {
    const ClassKey key = MakeClassKey(kApp, static_cast<uint32_t>(i));
    MetricVector stable{};
    MetricVector current{};
    for (Metric m : kAllMetrics) {
      const double base = rng.UniformDouble(10, 1000);
      At(stable, m) = base;
      At(current, m) = base * rng.UniformDouble(0.5, 2.0);
    }
    pop.stable.Update(key, stable, 0.0);
    pop.current[key] = current;
  }
  return pop;
}

bool SameOutliers(const OutlierReport& a, const OutlierReport& b) {
  if (a.outliers.size() != b.outliers.size()) return false;
  for (size_t i = 0; i < a.outliers.size(); ++i) {
    if (a.outliers[i].key != b.outliers[i].key) return false;
    if (a.outliers[i].metric != b.outliers[i].metric) return false;
    if (a.outliers[i].degree != b.outliers[i].degree) return false;
    if (a.outliers[i].high_side != b.outliers[i].high_side) return false;
  }
  return true;
}

class OutlierPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Scaling every class's current AND stable values of a metric by the
// same positive constant changes neither ratios nor (normalized)
// weights, so the verdicts are identical.
TEST_P(OutlierPropertyTest, ScaleInvariance) {
  Population pop = RandomPopulation(12, GetParam());
  OutlierDetector detector;
  const OutlierReport base = detector.Detect(pop.current, pop.stable);

  Population scaled;
  for (const auto& [key, vec] : pop.current) {
    MetricVector v = vec;
    for (Metric m : kAllMetrics) At(v, m) *= 1000.0;
    scaled.current[key] = v;
    MetricVector s = pop.stable.Find(key)->averages;
    for (Metric m : kAllMetrics) At(s, m) *= 1000.0;
    scaled.stable.Update(key, s, 0.0);
  }
  const OutlierReport after = detector.Detect(scaled.current, scaled.stable);
  EXPECT_TRUE(SameOutliers(base, after));
}

// Detection is a pure function of its inputs.
TEST_P(OutlierPropertyTest, Deterministic) {
  Population pop = RandomPopulation(10, GetParam() + 17);
  OutlierDetector detector;
  const OutlierReport a = detector.Detect(pop.current, pop.stable);
  const OutlierReport b = detector.Detect(pop.current, pop.stable);
  EXPECT_TRUE(SameOutliers(a, b));
  EXPECT_EQ(a.impacts, b.impacts);
  EXPECT_EQ(a.ratios, b.ratios);
}

// Every reported outlier's impact genuinely lies outside the fences
// computed from the report's own impact values.
TEST_P(OutlierPropertyTest, OutliersAreOutsideFences) {
  Population pop = RandomPopulation(14, GetParam() + 31);
  // Inject some real anomalies.
  Rng rng(GetParam());
  for (int i = 0; i < 3; ++i) {
    const ClassKey key =
        MakeClassKey(kApp, 1 + static_cast<uint32_t>(rng.NextUint64(14)));
    At(pop.current[key], Metric::kBufferMisses) *= 40.0;
  }
  OutlierDetector detector;
  const OutlierReport report = detector.Detect(pop.current, pop.stable);
  for (const auto& o : report.outliers) {
    std::vector<double> impacts;
    for (const auto& [key, impact] : report.impacts.at(o.metric)) {
      impacts.push_back(impact);
    }
    const QuartileSummary q = Quartiles(impacts);
    const double lo = q.q1 - detector.config().mild_fence * q.iqr;
    const double hi = q.q3 + detector.config().mild_fence * q.iqr;
    if (o.high_side) {
      EXPECT_GT(o.impact, hi);
    } else {
      EXPECT_LT(o.impact, lo);
    }
  }
}

// Extreme outliers are also outside the mild fence (fences nest).
TEST_P(OutlierPropertyTest, ExtremeImpliesBeyondMildFence) {
  Population pop = RandomPopulation(12, GetParam() + 47);
  At(pop.current[MakeClassKey(kApp, 5)], Metric::kReadAheads) *= 500.0;
  OutlierDetector detector;
  const OutlierReport report = detector.Detect(pop.current, pop.stable);
  for (const auto& o : report.outliers) {
    if (o.degree != OutlierDegree::kExtreme) continue;
    std::vector<double> impacts;
    for (const auto& [key, impact] : report.impacts.at(o.metric)) {
      impacts.push_back(impact);
    }
    const QuartileSummary q = Quartiles(impacts);
    if (o.high_side) {
      EXPECT_GT(o.impact, q.q3 + detector.config().extreme_fence * q.iqr);
    } else {
      EXPECT_LT(o.impact, q.q1 - detector.config().extreme_fence * q.iqr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OutlierPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace fglb
