#include "workload/trace.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace fglb {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<TraceRecord> SampleRecords() {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 100; ++i) {
    TraceRecord r;
    r.class_key = MakeClassKey(1 + i % 2, 10 + i % 5);
    r.access.page = MakePageId(static_cast<TableId>(i % 3), 1000 + i);
    r.access.kind = i % 4 == 0 ? AccessKind::kSequential
                               : AccessKind::kRandom;
    r.access.is_write = i % 7 == 0;
    records.push_back(r);
  }
  return records;
}

TEST(TraceTest, RoundTrip) {
  const std::string path = TempPath("fglb_trace_roundtrip.bin");
  const auto records = SampleRecords();
  ASSERT_TRUE(WriteTrace(path, records));
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(ReadTrace(path, &loaded));
  ASSERT_EQ(loaded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded[i].class_key, records[i].class_key);
    EXPECT_EQ(loaded[i].access.page, records[i].access.page);
    EXPECT_EQ(loaded[i].access.kind, records[i].access.kind);
    EXPECT_EQ(loaded[i].access.is_write, records[i].access.is_write);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, EmptyTraceRoundTrips) {
  const std::string path = TempPath("fglb_trace_empty.bin");
  ASSERT_TRUE(WriteTrace(path, {}));
  std::vector<TraceRecord> loaded = {TraceRecord{}};
  ASSERT_TRUE(ReadTrace(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(TraceTest, MissingFileFails) {
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(ReadTrace(TempPath("fglb_trace_does_not_exist.bin"),
                         &loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST(TraceTest, BadMagicRejected) {
  const std::string path = TempPath("fglb_trace_bad_magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTATRACEFILE_____________";
  }
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(ReadTrace(path, &loaded));
  std::remove(path.c_str());
}

TEST(TraceTest, TruncatedFileRejected) {
  const std::string path = TempPath("fglb_trace_truncated.bin");
  ASSERT_TRUE(WriteTrace(path, SampleRecords()));
  // Chop the last record in half.
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 12);
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(ReadTrace(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

// --- legacy v1 format: still readable, hardened against truncation
// and trailing garbage (hand-crafted files; WriteTrace emits v2 only)
// ---

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::string V1File(const std::vector<TraceRecord>& records) {
  std::string body = "FGLBTRC1";
  AppendU64(&body, records.size());
  for (const TraceRecord& r : records) {
    AppendU64(&body, r.class_key);
    AppendU64(&body, r.access.page);
    uint8_t flags = 0;
    if (r.access.kind == AccessKind::kSequential) flags |= 1;
    if (r.access.is_write) flags |= 2;
    body.push_back(static_cast<char>(flags));
    body.append(7, '\0');
  }
  return body;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(TraceTest, V1StillReadable) {
  const std::string path = TempPath("fglb_trace_v1_ok.bin");
  const auto records = SampleRecords();
  WriteBytes(path, V1File(records));
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(ReadTrace(path, &loaded));
  ASSERT_EQ(loaded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded[i].class_key, records[i].class_key);
    EXPECT_EQ(loaded[i].access.page, records[i].access.page);
    EXPECT_EQ(loaded[i].access.kind, records[i].access.kind);
    EXPECT_EQ(loaded[i].access.is_write, records[i].access.is_write);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, V1TruncatedRejected) {
  const std::string path = TempPath("fglb_trace_v1_truncated.bin");
  std::string bytes = V1File(SampleRecords());
  // Every truncation point must fail: mid-record, mid-count, mid-magic.
  for (size_t keep : {bytes.size() - 1, bytes.size() - 12,
                      bytes.size() - 24, size_t{20}, size_t{10}, size_t{3}}) {
    WriteBytes(path, bytes.substr(0, keep));
    std::vector<TraceRecord> loaded = {TraceRecord{}};
    EXPECT_FALSE(ReadTrace(path, &loaded)) << "kept " << keep << " bytes";
    EXPECT_TRUE(loaded.empty()) << "kept " << keep << " bytes";
  }
  std::remove(path.c_str());
}

TEST(TraceTest, V1TrailingGarbageRejected) {
  const std::string path = TempPath("fglb_trace_v1_garbage.bin");
  for (const std::string& extra :
       {std::string("x"), std::string("garbage"), std::string(4, '\0')}) {
    WriteBytes(path, V1File(SampleRecords()) + extra);
    std::vector<TraceRecord> loaded = {TraceRecord{}};
    EXPECT_FALSE(ReadTrace(path, &loaded));
    EXPECT_TRUE(loaded.empty());
  }
  std::remove(path.c_str());
}

TEST(TraceTest, V1OverlongCountRejected) {
  // A count promising far more records than the file holds must fail
  // cleanly instead of reserving gigabytes.
  const std::string path = TempPath("fglb_trace_v1_count.bin");
  std::string bytes = "FGLBTRC1";
  AppendU64(&bytes, 1ULL << 60);
  WriteBytes(path, bytes);
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(ReadTrace(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

// --- v2 format ---

TEST(TraceTest, WriteEmitsV2Magic) {
  const std::string path = TempPath("fglb_trace_v2_magic.bin");
  ASSERT_TRUE(WriteTrace(path, SampleRecords()));
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  EXPECT_EQ(std::string(magic, 8), "FGLBTRC2");
  // And v2 is substantially smaller than v1's 24 bytes/record.
  EXPECT_LT(std::filesystem::file_size(path),
            8 + 8 + SampleRecords().size() * 24);
  std::remove(path.c_str());
}

TEST(TraceTest, V2CorruptionDetected) {
  const std::string path = TempPath("fglb_trace_v2_corrupt.bin");
  ASSERT_TRUE(WriteTrace(path, SampleRecords()));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  // Flip one bit in every byte position after the magic in turn: the
  // CRC (or the magic/flags validation) must catch each one.
  for (size_t i = 8; i < bytes.size(); i += 7) {
    std::string corrupted = bytes;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x20);
    WriteBytes(path, corrupted);
    std::vector<TraceRecord> loaded = {TraceRecord{}};
    EXPECT_FALSE(ReadTrace(path, &loaded)) << "byte " << i;
    EXPECT_TRUE(loaded.empty()) << "byte " << i;
  }
  std::remove(path.c_str());
}

TEST(TraceTest, V2TruncationDetected) {
  const std::string path = TempPath("fglb_trace_v2_truncated.bin");
  ASSERT_TRUE(WriteTrace(path, SampleRecords()));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  for (size_t keep : {bytes.size() - 1, bytes.size() - 4, bytes.size() / 2,
                      size_t{9}}) {
    WriteBytes(path, bytes.substr(0, keep));
    std::vector<TraceRecord> loaded;
    EXPECT_FALSE(ReadTrace(path, &loaded)) << "kept " << keep << " bytes";
  }
  std::remove(path.c_str());
}

TEST(TraceTest, PagesOfClassFilters) {
  const auto records = SampleRecords();
  const ClassKey key = MakeClassKey(1, 10);
  const auto pages = PagesOfClass(records, key);
  ASSERT_FALSE(pages.empty());
  size_t expected = 0;
  for (const auto& r : records) expected += (r.class_key == key);
  EXPECT_EQ(pages.size(), expected);
}

}  // namespace
}  // namespace fglb
