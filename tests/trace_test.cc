#include "workload/trace.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace fglb {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<TraceRecord> SampleRecords() {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 100; ++i) {
    TraceRecord r;
    r.class_key = MakeClassKey(1 + i % 2, 10 + i % 5);
    r.access.page = MakePageId(static_cast<TableId>(i % 3), 1000 + i);
    r.access.kind = i % 4 == 0 ? AccessKind::kSequential
                               : AccessKind::kRandom;
    r.access.is_write = i % 7 == 0;
    records.push_back(r);
  }
  return records;
}

TEST(TraceTest, RoundTrip) {
  const std::string path = TempPath("fglb_trace_roundtrip.bin");
  const auto records = SampleRecords();
  ASSERT_TRUE(WriteTrace(path, records));
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(ReadTrace(path, &loaded));
  ASSERT_EQ(loaded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded[i].class_key, records[i].class_key);
    EXPECT_EQ(loaded[i].access.page, records[i].access.page);
    EXPECT_EQ(loaded[i].access.kind, records[i].access.kind);
    EXPECT_EQ(loaded[i].access.is_write, records[i].access.is_write);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, EmptyTraceRoundTrips) {
  const std::string path = TempPath("fglb_trace_empty.bin");
  ASSERT_TRUE(WriteTrace(path, {}));
  std::vector<TraceRecord> loaded = {TraceRecord{}};
  ASSERT_TRUE(ReadTrace(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(TraceTest, MissingFileFails) {
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(ReadTrace(TempPath("fglb_trace_does_not_exist.bin"),
                         &loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST(TraceTest, BadMagicRejected) {
  const std::string path = TempPath("fglb_trace_bad_magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTATRACEFILE_____________";
  }
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(ReadTrace(path, &loaded));
  std::remove(path.c_str());
}

TEST(TraceTest, TruncatedFileRejected) {
  const std::string path = TempPath("fglb_trace_truncated.bin");
  ASSERT_TRUE(WriteTrace(path, SampleRecords()));
  // Chop the last record in half.
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 12);
  std::vector<TraceRecord> loaded;
  EXPECT_FALSE(ReadTrace(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(TraceTest, PagesOfClassFilters) {
  const auto records = SampleRecords();
  const ClassKey key = MakeClassKey(1, 10);
  const auto pages = PagesOfClass(records, key);
  ASSERT_FALSE(pages.empty());
  size_t expected = 0;
  for (const auto& r : records) expected += (r.class_key == key);
  EXPECT_EQ(pages.size(), expected);
}

}  // namespace
}  // namespace fglb
