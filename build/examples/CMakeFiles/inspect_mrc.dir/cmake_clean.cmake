file(REMOVE_RECURSE
  "CMakeFiles/inspect_mrc.dir/inspect_mrc.cc.o"
  "CMakeFiles/inspect_mrc.dir/inspect_mrc.cc.o.d"
  "inspect_mrc"
  "inspect_mrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_mrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
