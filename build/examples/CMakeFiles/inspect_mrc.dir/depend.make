# Empty dependencies file for inspect_mrc.
# This may be replaced when dependencies are built.
