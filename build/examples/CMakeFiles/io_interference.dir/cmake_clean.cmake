file(REMOVE_RECURSE
  "CMakeFiles/io_interference.dir/io_interference.cc.o"
  "CMakeFiles/io_interference.dir/io_interference.cc.o.d"
  "io_interference"
  "io_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
