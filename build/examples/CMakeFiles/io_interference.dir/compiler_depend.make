# Empty compiler generated dependencies file for io_interference.
# This may be replaced when dependencies are built.
