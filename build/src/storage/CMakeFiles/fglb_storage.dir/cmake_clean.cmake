file(REMOVE_RECURSE
  "CMakeFiles/fglb_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/fglb_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/fglb_storage.dir/clock_buffer_pool.cc.o"
  "CMakeFiles/fglb_storage.dir/clock_buffer_pool.cc.o.d"
  "CMakeFiles/fglb_storage.dir/partitioned_buffer_pool.cc.o"
  "CMakeFiles/fglb_storage.dir/partitioned_buffer_pool.cc.o.d"
  "libfglb_storage.a"
  "libfglb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fglb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
