file(REMOVE_RECURSE
  "libfglb_storage.a"
)
