# Empty dependencies file for fglb_storage.
# This may be replaced when dependencies are built.
