file(REMOVE_RECURSE
  "libfglb_common.a"
)
