# Empty compiler generated dependencies file for fglb_common.
# This may be replaced when dependencies are built.
