file(REMOVE_RECURSE
  "CMakeFiles/fglb_common.dir/histogram.cc.o"
  "CMakeFiles/fglb_common.dir/histogram.cc.o.d"
  "CMakeFiles/fglb_common.dir/random.cc.o"
  "CMakeFiles/fglb_common.dir/random.cc.o.d"
  "CMakeFiles/fglb_common.dir/stats.cc.o"
  "CMakeFiles/fglb_common.dir/stats.cc.o.d"
  "libfglb_common.a"
  "libfglb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fglb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
