
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/io_interference.cc" "src/core/CMakeFiles/fglb_core.dir/io_interference.cc.o" "gcc" "src/core/CMakeFiles/fglb_core.dir/io_interference.cc.o.d"
  "/root/repo/src/core/log_analyzer.cc" "src/core/CMakeFiles/fglb_core.dir/log_analyzer.cc.o" "gcc" "src/core/CMakeFiles/fglb_core.dir/log_analyzer.cc.o.d"
  "/root/repo/src/core/outlier_detector.cc" "src/core/CMakeFiles/fglb_core.dir/outlier_detector.cc.o" "gcc" "src/core/CMakeFiles/fglb_core.dir/outlier_detector.cc.o.d"
  "/root/repo/src/core/placement_optimizer.cc" "src/core/CMakeFiles/fglb_core.dir/placement_optimizer.cc.o" "gcc" "src/core/CMakeFiles/fglb_core.dir/placement_optimizer.cc.o.d"
  "/root/repo/src/core/quota_planner.cc" "src/core/CMakeFiles/fglb_core.dir/quota_planner.cc.o" "gcc" "src/core/CMakeFiles/fglb_core.dir/quota_planner.cc.o.d"
  "/root/repo/src/core/selective_retuner.cc" "src/core/CMakeFiles/fglb_core.dir/selective_retuner.cc.o" "gcc" "src/core/CMakeFiles/fglb_core.dir/selective_retuner.cc.o.d"
  "/root/repo/src/core/stable_state.cc" "src/core/CMakeFiles/fglb_core.dir/stable_state.cc.o" "gcc" "src/core/CMakeFiles/fglb_core.dir/stable_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/fglb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fglb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/fglb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/mrc/CMakeFiles/fglb_mrc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fglb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fglb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fglb_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
