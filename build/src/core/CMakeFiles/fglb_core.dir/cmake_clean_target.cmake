file(REMOVE_RECURSE
  "libfglb_core.a"
)
