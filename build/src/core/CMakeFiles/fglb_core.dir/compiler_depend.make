# Empty compiler generated dependencies file for fglb_core.
# This may be replaced when dependencies are built.
