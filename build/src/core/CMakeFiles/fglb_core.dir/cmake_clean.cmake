file(REMOVE_RECURSE
  "CMakeFiles/fglb_core.dir/io_interference.cc.o"
  "CMakeFiles/fglb_core.dir/io_interference.cc.o.d"
  "CMakeFiles/fglb_core.dir/log_analyzer.cc.o"
  "CMakeFiles/fglb_core.dir/log_analyzer.cc.o.d"
  "CMakeFiles/fglb_core.dir/outlier_detector.cc.o"
  "CMakeFiles/fglb_core.dir/outlier_detector.cc.o.d"
  "CMakeFiles/fglb_core.dir/placement_optimizer.cc.o"
  "CMakeFiles/fglb_core.dir/placement_optimizer.cc.o.d"
  "CMakeFiles/fglb_core.dir/quota_planner.cc.o"
  "CMakeFiles/fglb_core.dir/quota_planner.cc.o.d"
  "CMakeFiles/fglb_core.dir/selective_retuner.cc.o"
  "CMakeFiles/fglb_core.dir/selective_retuner.cc.o.d"
  "CMakeFiles/fglb_core.dir/stable_state.cc.o"
  "CMakeFiles/fglb_core.dir/stable_state.cc.o.d"
  "libfglb_core.a"
  "libfglb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fglb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
