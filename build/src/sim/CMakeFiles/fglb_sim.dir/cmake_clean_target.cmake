file(REMOVE_RECURSE
  "libfglb_sim.a"
)
