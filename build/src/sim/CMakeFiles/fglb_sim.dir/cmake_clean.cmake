file(REMOVE_RECURSE
  "CMakeFiles/fglb_sim.dir/queue_resource.cc.o"
  "CMakeFiles/fglb_sim.dir/queue_resource.cc.o.d"
  "CMakeFiles/fglb_sim.dir/simulator.cc.o"
  "CMakeFiles/fglb_sim.dir/simulator.cc.o.d"
  "libfglb_sim.a"
  "libfglb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fglb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
