# Empty dependencies file for fglb_sim.
# This may be replaced when dependencies are built.
