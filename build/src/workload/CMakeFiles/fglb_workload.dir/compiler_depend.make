# Empty compiler generated dependencies file for fglb_workload.
# This may be replaced when dependencies are built.
