
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/access_generator.cc" "src/workload/CMakeFiles/fglb_workload.dir/access_generator.cc.o" "gcc" "src/workload/CMakeFiles/fglb_workload.dir/access_generator.cc.o.d"
  "/root/repo/src/workload/application.cc" "src/workload/CMakeFiles/fglb_workload.dir/application.cc.o" "gcc" "src/workload/CMakeFiles/fglb_workload.dir/application.cc.o.d"
  "/root/repo/src/workload/client_emulator.cc" "src/workload/CMakeFiles/fglb_workload.dir/client_emulator.cc.o" "gcc" "src/workload/CMakeFiles/fglb_workload.dir/client_emulator.cc.o.d"
  "/root/repo/src/workload/load_function.cc" "src/workload/CMakeFiles/fglb_workload.dir/load_function.cc.o" "gcc" "src/workload/CMakeFiles/fglb_workload.dir/load_function.cc.o.d"
  "/root/repo/src/workload/oltp.cc" "src/workload/CMakeFiles/fglb_workload.dir/oltp.cc.o" "gcc" "src/workload/CMakeFiles/fglb_workload.dir/oltp.cc.o.d"
  "/root/repo/src/workload/rubis.cc" "src/workload/CMakeFiles/fglb_workload.dir/rubis.cc.o" "gcc" "src/workload/CMakeFiles/fglb_workload.dir/rubis.cc.o.d"
  "/root/repo/src/workload/tpcw.cc" "src/workload/CMakeFiles/fglb_workload.dir/tpcw.cc.o" "gcc" "src/workload/CMakeFiles/fglb_workload.dir/tpcw.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/fglb_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/fglb_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fglb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fglb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fglb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
