file(REMOVE_RECURSE
  "CMakeFiles/fglb_workload.dir/access_generator.cc.o"
  "CMakeFiles/fglb_workload.dir/access_generator.cc.o.d"
  "CMakeFiles/fglb_workload.dir/application.cc.o"
  "CMakeFiles/fglb_workload.dir/application.cc.o.d"
  "CMakeFiles/fglb_workload.dir/client_emulator.cc.o"
  "CMakeFiles/fglb_workload.dir/client_emulator.cc.o.d"
  "CMakeFiles/fglb_workload.dir/load_function.cc.o"
  "CMakeFiles/fglb_workload.dir/load_function.cc.o.d"
  "CMakeFiles/fglb_workload.dir/oltp.cc.o"
  "CMakeFiles/fglb_workload.dir/oltp.cc.o.d"
  "CMakeFiles/fglb_workload.dir/rubis.cc.o"
  "CMakeFiles/fglb_workload.dir/rubis.cc.o.d"
  "CMakeFiles/fglb_workload.dir/tpcw.cc.o"
  "CMakeFiles/fglb_workload.dir/tpcw.cc.o.d"
  "CMakeFiles/fglb_workload.dir/trace.cc.o"
  "CMakeFiles/fglb_workload.dir/trace.cc.o.d"
  "libfglb_workload.a"
  "libfglb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fglb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
