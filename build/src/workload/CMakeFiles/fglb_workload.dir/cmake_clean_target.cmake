file(REMOVE_RECURSE
  "libfglb_workload.a"
)
