file(REMOVE_RECURSE
  "CMakeFiles/fglb_mrc.dir/mattson_stack.cc.o"
  "CMakeFiles/fglb_mrc.dir/mattson_stack.cc.o.d"
  "CMakeFiles/fglb_mrc.dir/miss_ratio_curve.cc.o"
  "CMakeFiles/fglb_mrc.dir/miss_ratio_curve.cc.o.d"
  "CMakeFiles/fglb_mrc.dir/mrc_tracker.cc.o"
  "CMakeFiles/fglb_mrc.dir/mrc_tracker.cc.o.d"
  "libfglb_mrc.a"
  "libfglb_mrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fglb_mrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
