file(REMOVE_RECURSE
  "libfglb_mrc.a"
)
