# Empty compiler generated dependencies file for fglb_mrc.
# This may be replaced when dependencies are built.
