
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mrc/mattson_stack.cc" "src/mrc/CMakeFiles/fglb_mrc.dir/mattson_stack.cc.o" "gcc" "src/mrc/CMakeFiles/fglb_mrc.dir/mattson_stack.cc.o.d"
  "/root/repo/src/mrc/miss_ratio_curve.cc" "src/mrc/CMakeFiles/fglb_mrc.dir/miss_ratio_curve.cc.o" "gcc" "src/mrc/CMakeFiles/fglb_mrc.dir/miss_ratio_curve.cc.o.d"
  "/root/repo/src/mrc/mrc_tracker.cc" "src/mrc/CMakeFiles/fglb_mrc.dir/mrc_tracker.cc.o" "gcc" "src/mrc/CMakeFiles/fglb_mrc.dir/mrc_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fglb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fglb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
