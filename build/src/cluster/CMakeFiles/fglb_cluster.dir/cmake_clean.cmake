file(REMOVE_RECURSE
  "CMakeFiles/fglb_cluster.dir/lock_manager.cc.o"
  "CMakeFiles/fglb_cluster.dir/lock_manager.cc.o.d"
  "CMakeFiles/fglb_cluster.dir/physical_server.cc.o"
  "CMakeFiles/fglb_cluster.dir/physical_server.cc.o.d"
  "CMakeFiles/fglb_cluster.dir/replica.cc.o"
  "CMakeFiles/fglb_cluster.dir/replica.cc.o.d"
  "CMakeFiles/fglb_cluster.dir/resource_manager.cc.o"
  "CMakeFiles/fglb_cluster.dir/resource_manager.cc.o.d"
  "CMakeFiles/fglb_cluster.dir/scheduler.cc.o"
  "CMakeFiles/fglb_cluster.dir/scheduler.cc.o.d"
  "libfglb_cluster.a"
  "libfglb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fglb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
