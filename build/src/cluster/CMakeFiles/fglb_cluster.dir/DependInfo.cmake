
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/lock_manager.cc" "src/cluster/CMakeFiles/fglb_cluster.dir/lock_manager.cc.o" "gcc" "src/cluster/CMakeFiles/fglb_cluster.dir/lock_manager.cc.o.d"
  "/root/repo/src/cluster/physical_server.cc" "src/cluster/CMakeFiles/fglb_cluster.dir/physical_server.cc.o" "gcc" "src/cluster/CMakeFiles/fglb_cluster.dir/physical_server.cc.o.d"
  "/root/repo/src/cluster/replica.cc" "src/cluster/CMakeFiles/fglb_cluster.dir/replica.cc.o" "gcc" "src/cluster/CMakeFiles/fglb_cluster.dir/replica.cc.o.d"
  "/root/repo/src/cluster/resource_manager.cc" "src/cluster/CMakeFiles/fglb_cluster.dir/resource_manager.cc.o" "gcc" "src/cluster/CMakeFiles/fglb_cluster.dir/resource_manager.cc.o.d"
  "/root/repo/src/cluster/scheduler.cc" "src/cluster/CMakeFiles/fglb_cluster.dir/scheduler.cc.o" "gcc" "src/cluster/CMakeFiles/fglb_cluster.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fglb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/fglb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fglb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fglb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fglb_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
