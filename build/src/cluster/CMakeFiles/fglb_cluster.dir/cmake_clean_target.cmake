file(REMOVE_RECURSE
  "libfglb_cluster.a"
)
