# Empty compiler generated dependencies file for fglb_cluster.
# This may be replaced when dependencies are built.
