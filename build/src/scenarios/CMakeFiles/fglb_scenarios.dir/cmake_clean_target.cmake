file(REMOVE_RECURSE
  "libfglb_scenarios.a"
)
