file(REMOVE_RECURSE
  "CMakeFiles/fglb_scenarios.dir/cli_options.cc.o"
  "CMakeFiles/fglb_scenarios.dir/cli_options.cc.o.d"
  "CMakeFiles/fglb_scenarios.dir/harness.cc.o"
  "CMakeFiles/fglb_scenarios.dir/harness.cc.o.d"
  "CMakeFiles/fglb_scenarios.dir/report.cc.o"
  "CMakeFiles/fglb_scenarios.dir/report.cc.o.d"
  "libfglb_scenarios.a"
  "libfglb_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fglb_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
