# Empty compiler generated dependencies file for fglb_scenarios.
# This may be replaced when dependencies are built.
