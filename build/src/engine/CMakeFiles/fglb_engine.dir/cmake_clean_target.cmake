file(REMOVE_RECURSE
  "libfglb_engine.a"
)
