
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/database_engine.cc" "src/engine/CMakeFiles/fglb_engine.dir/database_engine.cc.o" "gcc" "src/engine/CMakeFiles/fglb_engine.dir/database_engine.cc.o.d"
  "/root/repo/src/engine/metrics.cc" "src/engine/CMakeFiles/fglb_engine.dir/metrics.cc.o" "gcc" "src/engine/CMakeFiles/fglb_engine.dir/metrics.cc.o.d"
  "/root/repo/src/engine/stats_collector.cc" "src/engine/CMakeFiles/fglb_engine.dir/stats_collector.cc.o" "gcc" "src/engine/CMakeFiles/fglb_engine.dir/stats_collector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fglb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fglb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fglb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fglb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
