# Empty compiler generated dependencies file for fglb_engine.
# This may be replaced when dependencies are built.
