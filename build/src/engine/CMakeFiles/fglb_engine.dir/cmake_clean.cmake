file(REMOVE_RECURSE
  "CMakeFiles/fglb_engine.dir/database_engine.cc.o"
  "CMakeFiles/fglb_engine.dir/database_engine.cc.o.d"
  "CMakeFiles/fglb_engine.dir/metrics.cc.o"
  "CMakeFiles/fglb_engine.dir/metrics.cc.o.d"
  "CMakeFiles/fglb_engine.dir/stats_collector.cc.o"
  "CMakeFiles/fglb_engine.dir/stats_collector.cc.o.d"
  "libfglb_engine.a"
  "libfglb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fglb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
