# Empty dependencies file for fglb_sim_cli.
# This may be replaced when dependencies are built.
