file(REMOVE_RECURSE
  "CMakeFiles/fglb_sim_cli.dir/fglb_sim.cc.o"
  "CMakeFiles/fglb_sim_cli.dir/fglb_sim.cc.o.d"
  "fglb_sim"
  "fglb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fglb_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
