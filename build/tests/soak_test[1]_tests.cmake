add_test([=[SoakTest.TwoSimulatedHoursThreeTenants]=]  /root/repo/build/tests/soak_test [==[--gtest_filter=SoakTest.TwoSimulatedHoursThreeTenants]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[SoakTest.TwoSimulatedHoursThreeTenants]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  soak_test_TESTS SoakTest.TwoSimulatedHoursThreeTenants)
