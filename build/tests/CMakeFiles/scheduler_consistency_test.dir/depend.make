# Empty dependencies file for scheduler_consistency_test.
# This may be replaced when dependencies are built.
