file(REMOVE_RECURSE
  "CMakeFiles/scheduler_consistency_test.dir/scheduler_consistency_test.cc.o"
  "CMakeFiles/scheduler_consistency_test.dir/scheduler_consistency_test.cc.o.d"
  "scheduler_consistency_test"
  "scheduler_consistency_test.pdb"
  "scheduler_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
