# Empty compiler generated dependencies file for engine_readahead_test.
# This may be replaced when dependencies are built.
