file(REMOVE_RECURSE
  "CMakeFiles/engine_readahead_test.dir/engine_readahead_test.cc.o"
  "CMakeFiles/engine_readahead_test.dir/engine_readahead_test.cc.o.d"
  "engine_readahead_test"
  "engine_readahead_test.pdb"
  "engine_readahead_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_readahead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
