file(REMOVE_RECURSE
  "CMakeFiles/outlier_detector_test.dir/outlier_detector_test.cc.o"
  "CMakeFiles/outlier_detector_test.dir/outlier_detector_test.cc.o.d"
  "outlier_detector_test"
  "outlier_detector_test.pdb"
  "outlier_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlier_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
