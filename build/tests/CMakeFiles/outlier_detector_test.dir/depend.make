# Empty dependencies file for outlier_detector_test.
# This may be replaced when dependencies are built.
