file(REMOVE_RECURSE
  "CMakeFiles/clock_buffer_pool_test.dir/clock_buffer_pool_test.cc.o"
  "CMakeFiles/clock_buffer_pool_test.dir/clock_buffer_pool_test.cc.o.d"
  "clock_buffer_pool_test"
  "clock_buffer_pool_test.pdb"
  "clock_buffer_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_buffer_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
