# Empty dependencies file for lock_manager_property_test.
# This may be replaced when dependencies are built.
