# Empty compiler generated dependencies file for mix_shift_test.
# This may be replaced when dependencies are built.
