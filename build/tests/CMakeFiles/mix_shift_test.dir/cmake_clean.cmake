file(REMOVE_RECURSE
  "CMakeFiles/mix_shift_test.dir/mix_shift_test.cc.o"
  "CMakeFiles/mix_shift_test.dir/mix_shift_test.cc.o.d"
  "mix_shift_test"
  "mix_shift_test.pdb"
  "mix_shift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_shift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
