# Empty dependencies file for mattson_stress_test.
# This may be replaced when dependencies are built.
