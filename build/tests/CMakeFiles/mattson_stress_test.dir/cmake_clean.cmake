file(REMOVE_RECURSE
  "CMakeFiles/mattson_stress_test.dir/mattson_stress_test.cc.o"
  "CMakeFiles/mattson_stress_test.dir/mattson_stress_test.cc.o.d"
  "mattson_stress_test"
  "mattson_stress_test.pdb"
  "mattson_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mattson_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
