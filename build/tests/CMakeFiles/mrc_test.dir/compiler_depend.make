# Empty compiler generated dependencies file for mrc_test.
# This may be replaced when dependencies are built.
