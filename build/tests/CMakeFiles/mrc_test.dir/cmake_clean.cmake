file(REMOVE_RECURSE
  "CMakeFiles/mrc_test.dir/mrc_test.cc.o"
  "CMakeFiles/mrc_test.dir/mrc_test.cc.o.d"
  "mrc_test"
  "mrc_test.pdb"
  "mrc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
