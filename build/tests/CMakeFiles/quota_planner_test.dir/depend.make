# Empty dependencies file for quota_planner_test.
# This may be replaced when dependencies are built.
