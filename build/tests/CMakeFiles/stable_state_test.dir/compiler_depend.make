# Empty compiler generated dependencies file for stable_state_test.
# This may be replaced when dependencies are built.
