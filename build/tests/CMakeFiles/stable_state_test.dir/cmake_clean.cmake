file(REMOVE_RECURSE
  "CMakeFiles/stable_state_test.dir/stable_state_test.cc.o"
  "CMakeFiles/stable_state_test.dir/stable_state_test.cc.o.d"
  "stable_state_test"
  "stable_state_test.pdb"
  "stable_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stable_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
