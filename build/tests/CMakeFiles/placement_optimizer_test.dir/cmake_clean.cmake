file(REMOVE_RECURSE
  "CMakeFiles/placement_optimizer_test.dir/placement_optimizer_test.cc.o"
  "CMakeFiles/placement_optimizer_test.dir/placement_optimizer_test.cc.o.d"
  "placement_optimizer_test"
  "placement_optimizer_test.pdb"
  "placement_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
