# Empty compiler generated dependencies file for log_analyzer_test.
# This may be replaced when dependencies are built.
