file(REMOVE_RECURSE
  "CMakeFiles/log_analyzer_test.dir/log_analyzer_test.cc.o"
  "CMakeFiles/log_analyzer_test.dir/log_analyzer_test.cc.o.d"
  "log_analyzer_test"
  "log_analyzer_test.pdb"
  "log_analyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
