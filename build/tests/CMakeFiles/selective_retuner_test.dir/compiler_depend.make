# Empty compiler generated dependencies file for selective_retuner_test.
# This may be replaced when dependencies are built.
