file(REMOVE_RECURSE
  "CMakeFiles/selective_retuner_test.dir/selective_retuner_test.cc.o"
  "CMakeFiles/selective_retuner_test.dir/selective_retuner_test.cc.o.d"
  "selective_retuner_test"
  "selective_retuner_test.pdb"
  "selective_retuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selective_retuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
