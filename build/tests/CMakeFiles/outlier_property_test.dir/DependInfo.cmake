
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/outlier_property_test.cc" "tests/CMakeFiles/outlier_property_test.dir/outlier_property_test.cc.o" "gcc" "tests/CMakeFiles/outlier_property_test.dir/outlier_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenarios/CMakeFiles/fglb_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fglb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fglb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/fglb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fglb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mrc/CMakeFiles/fglb_mrc.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fglb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fglb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fglb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
