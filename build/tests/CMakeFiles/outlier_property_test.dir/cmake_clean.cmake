file(REMOVE_RECURSE
  "CMakeFiles/outlier_property_test.dir/outlier_property_test.cc.o"
  "CMakeFiles/outlier_property_test.dir/outlier_property_test.cc.o.d"
  "outlier_property_test"
  "outlier_property_test.pdb"
  "outlier_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlier_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
