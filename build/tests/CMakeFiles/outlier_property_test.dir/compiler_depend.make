# Empty compiler generated dependencies file for outlier_property_test.
# This may be replaced when dependencies are built.
