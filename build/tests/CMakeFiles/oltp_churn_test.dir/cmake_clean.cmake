file(REMOVE_RECURSE
  "CMakeFiles/oltp_churn_test.dir/oltp_churn_test.cc.o"
  "CMakeFiles/oltp_churn_test.dir/oltp_churn_test.cc.o.d"
  "oltp_churn_test"
  "oltp_churn_test.pdb"
  "oltp_churn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_churn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
