# Empty dependencies file for oltp_churn_test.
# This may be replaced when dependencies are built.
