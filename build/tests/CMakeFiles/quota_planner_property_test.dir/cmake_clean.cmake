file(REMOVE_RECURSE
  "CMakeFiles/quota_planner_property_test.dir/quota_planner_property_test.cc.o"
  "CMakeFiles/quota_planner_property_test.dir/quota_planner_property_test.cc.o.d"
  "quota_planner_property_test"
  "quota_planner_property_test.pdb"
  "quota_planner_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quota_planner_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
