# Empty compiler generated dependencies file for quota_planner_property_test.
# This may be replaced when dependencies are built.
