# Empty compiler generated dependencies file for bench_ext_wrong_arguments.
# This may be replaced when dependencies are built.
