file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_wrong_arguments.dir/bench_ext_wrong_arguments.cc.o"
  "CMakeFiles/bench_ext_wrong_arguments.dir/bench_ext_wrong_arguments.cc.o.d"
  "bench_ext_wrong_arguments"
  "bench_ext_wrong_arguments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_wrong_arguments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
