file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_mrc_searchitems.dir/bench_fig6_mrc_searchitems.cc.o"
  "CMakeFiles/bench_fig6_mrc_searchitems.dir/bench_fig6_mrc_searchitems.cc.o.d"
  "bench_fig6_mrc_searchitems"
  "bench_fig6_mrc_searchitems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_mrc_searchitems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
