# Empty dependencies file for bench_fig6_mrc_searchitems.
# This may be replaced when dependencies are built.
