# Empty compiler generated dependencies file for bench_table3_io_contention.
# This may be replaced when dependencies are built.
