file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_io_contention.dir/bench_table3_io_contention.cc.o"
  "CMakeFiles/bench_table3_io_contention.dir/bench_table3_io_contention.cc.o.d"
  "bench_table3_io_contention"
  "bench_table3_io_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_io_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
