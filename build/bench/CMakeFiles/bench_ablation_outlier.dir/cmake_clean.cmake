file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_outlier.dir/bench_ablation_outlier.cc.o"
  "CMakeFiles/bench_ablation_outlier.dir/bench_ablation_outlier.cc.o.d"
  "bench_ablation_outlier"
  "bench_ablation_outlier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_outlier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
