file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mattson.dir/bench_ablation_mattson.cc.o"
  "CMakeFiles/bench_ablation_mattson.dir/bench_ablation_mattson.cc.o.d"
  "bench_ablation_mattson"
  "bench_ablation_mattson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mattson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
