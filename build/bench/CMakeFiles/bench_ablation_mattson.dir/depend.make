# Empty dependencies file for bench_ablation_mattson.
# This may be replaced when dependencies are built.
