file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_lock_contention.dir/bench_ext_lock_contention.cc.o"
  "CMakeFiles/bench_ext_lock_contention.dir/bench_ext_lock_contention.cc.o.d"
  "bench_ext_lock_contention"
  "bench_ext_lock_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_lock_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
