# Empty dependencies file for bench_ext_lock_contention.
# This may be replaced when dependencies are built.
