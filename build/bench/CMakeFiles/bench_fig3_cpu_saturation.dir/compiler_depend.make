# Empty compiler generated dependencies file for bench_fig3_cpu_saturation.
# This may be replaced when dependencies are built.
