file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cpu_saturation.dir/bench_fig3_cpu_saturation.cc.o"
  "CMakeFiles/bench_fig3_cpu_saturation.dir/bench_fig3_cpu_saturation.cc.o.d"
  "bench_fig3_cpu_saturation"
  "bench_fig3_cpu_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cpu_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
