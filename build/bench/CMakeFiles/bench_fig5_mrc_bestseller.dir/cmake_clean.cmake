file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_mrc_bestseller.dir/bench_fig5_mrc_bestseller.cc.o"
  "CMakeFiles/bench_fig5_mrc_bestseller.dir/bench_fig5_mrc_bestseller.cc.o.d"
  "bench_fig5_mrc_bestseller"
  "bench_fig5_mrc_bestseller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mrc_bestseller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
