# Empty compiler generated dependencies file for bench_fig5_mrc_bestseller.
# This may be replaced when dependencies are built.
