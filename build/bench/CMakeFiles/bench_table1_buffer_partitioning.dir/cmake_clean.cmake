file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_buffer_partitioning.dir/bench_table1_buffer_partitioning.cc.o"
  "CMakeFiles/bench_table1_buffer_partitioning.dir/bench_table1_buffer_partitioning.cc.o.d"
  "bench_table1_buffer_partitioning"
  "bench_table1_buffer_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_buffer_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
