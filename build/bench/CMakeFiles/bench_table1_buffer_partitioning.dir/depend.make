# Empty dependencies file for bench_table1_buffer_partitioning.
# This may be replaced when dependencies are built.
