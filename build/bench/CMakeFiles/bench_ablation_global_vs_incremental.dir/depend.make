# Empty dependencies file for bench_ablation_global_vs_incremental.
# This may be replaced when dependencies are built.
