file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_memory_contention.dir/bench_table2_memory_contention.cc.o"
  "CMakeFiles/bench_table2_memory_contention.dir/bench_table2_memory_contention.cc.o.d"
  "bench_table2_memory_contention"
  "bench_table2_memory_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_memory_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
