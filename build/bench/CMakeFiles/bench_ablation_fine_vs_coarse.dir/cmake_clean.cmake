file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fine_vs_coarse.dir/bench_ablation_fine_vs_coarse.cc.o"
  "CMakeFiles/bench_ablation_fine_vs_coarse.dir/bench_ablation_fine_vs_coarse.cc.o.d"
  "bench_ablation_fine_vs_coarse"
  "bench_ablation_fine_vs_coarse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fine_vs_coarse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
