# Empty dependencies file for bench_fig4_index_drop.
# This may be replaced when dependencies are built.
