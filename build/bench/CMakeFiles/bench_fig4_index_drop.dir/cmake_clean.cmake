file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_index_drop.dir/bench_fig4_index_drop.cc.o"
  "CMakeFiles/bench_fig4_index_drop.dir/bench_fig4_index_drop.cc.o.d"
  "bench_fig4_index_drop"
  "bench_fig4_index_drop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_index_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
