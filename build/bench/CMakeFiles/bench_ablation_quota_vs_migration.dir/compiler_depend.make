# Empty compiler generated dependencies file for bench_ablation_quota_vs_migration.
# This may be replaced when dependencies are built.
